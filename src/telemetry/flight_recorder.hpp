// Always-on lock-free flight recorder: a fixed-size per-thread ring of
// recent control-plane events, dumped as bounded JSON post-mortems.
//
// Unlike the rest of telemetry this is NOT gated on telemetry::enabled():
// the whole point is that when the service sheds, breaches its latency
// objective, or drains at shutdown, the last few hundred events per
// thread are already there — who submitted, what was dispatched where,
// which requests were the victims. The cost budget is the same <2% bound
// as the telemetry switch: recording is one thread-local lookup plus
// eight relaxed atomic stores and a release publish, no locks, no
// allocation after a thread's first event, and events are emitted only on
// service control-path operations (per request, never per DP cell).
//
// Concurrency model: each ring has exactly one writer (its thread);
// readers (dump/snapshot) take a registry snapshot and read the rings
// with relaxed loads. A slot being overwritten mid-read can yield a
// MIXED event (words from two different records) — acceptable for a
// post-mortem and free of data races because every word is an atomic.
// Dumps are bounded: at most `max_events` most-recent events, ring
// capacity per thread, fixed-size records.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/digest.hpp"

namespace fastz::telemetry {

enum class FlightEventKind : std::uint32_t {
  kNone = 0,
  kSubmit = 1,         // arg0 = queue depth after enqueue
  kShedQueueFull = 2,  // arg0 = queue depth, arg1 = queue limit
  kShedShutdown = 3,
  kBatchDispatch = 4,  // arg0 = batch size, arg1 = shard
  kCacheHit = 5,       // arg1 = shard
  kCoalesced = 6,      // arg1 = shard
  kPipelineRun = 7,    // arg0 = unique items run, arg1 = shard
  kComplete = 8,       // arg0 = latency ns, arg1 = shard
  kSloBreach = 9,      // arg0 = latency ns, arg1 = objective ns
  kShutdownDrain = 10,
};

std::string_view flight_event_kind_name(FlightEventKind kind) noexcept;

struct FlightEvent {
  std::uint64_t ts_ns = 0;  // steady-clock ns since the recorder epoch
  FlightEventKind kind = FlightEventKind::kNone;
  std::uint32_t tid = 0;  // recorder-assigned small thread id
  Digest128 request{};
  Digest128 batch{};
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kRingEvents = 256;  // per thread, ~16 KB

  FlightRecorder();

  // Wait-free; safe from any thread at any time.
  void record(FlightEventKind kind, const Digest128& request = {},
              const Digest128& batch = {}, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0) noexcept;

  // Best-effort merged copy of every ring's surviving events, oldest
  // first. At most kRingEvents per registered thread.
  std::vector<FlightEvent> snapshot() const;

  // Events ever recorded (including ones the rings have since dropped).
  std::uint64_t recorded() const noexcept {
    return recorded_.load(std::memory_order_relaxed);
  }

  // Bounded post-mortem: `{"schema": "fastz.flight/v1", "cause": ...,
  // "events": [...]}` with at most `max_events` most-recent events.
  void dump_json(std::ostream& out, std::string_view cause,
                 std::size_t max_events = 1024) const;
  // Returns false when the file cannot be opened/written.
  bool dump_json_file(const std::string& path, std::string_view cause,
                      std::size_t max_events = 1024) const;

  // Drops every ring's events (tests/bench boundaries; rings stay
  // registered).
  void clear();

  // Process-wide recorder used by the service instrumentation.
  static FlightRecorder& global();

 private:
  // One event is eight relaxed-atomic words:
  // [0] ts_ns, [1] kind | tid<<32, [2..3] request, [4..5] batch,
  // [6] arg0, [7] arg1.
  static constexpr std::size_t kWords = 8;
  struct Ring {
    std::array<std::array<std::atomic<std::uint64_t>, kWords>, kRingEvents> slots{};
    std::atomic<std::uint64_t> head{0};  // events ever written to this ring
    std::uint32_t tid = 0;
  };

  Ring& local_ring();

  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<Ring>> rings_;
  std::uint32_t next_tid_ = 0;
  std::atomic<std::uint64_t> recorded_{0};
  std::chrono::steady_clock::time_point epoch_;
  // Process-unique instance id: thread-local ring lookup keys on it rather
  // than `this`, so a recorder reallocated at a dead recorder's address
  // never inherits the dead recorder's rings.
  std::uint64_t id_ = 0;
};

}  // namespace fastz::telemetry
