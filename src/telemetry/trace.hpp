// Scoped tracing with per-thread event buffers.
//
// A `TraceSpan` brackets a region of code; on destruction it appends one
// complete event (begin timestamp + duration) to the calling thread's
// buffer. Buffers are thread-local, so recording never contends across
// threads — each buffer carries a mutex that is uncontended on the append
// path and is only fought over during an export snapshot ("lock-free-ish").
// Threads are assigned small sequential ids at first record, which become
// the `tid` lanes of the Chrome trace timeline.
//
// Everything is gated on `telemetry::enabled()`: a span constructed while
// telemetry is off costs one relaxed atomic load and holds no state.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace fastz::telemetry {

// One completed span. Timestamps are microseconds since the recorder epoch.
//
// Host-side spans use the defaults (pid 1, complete event, no args). The
// virtual-GPU profiler synthesizes events on its own process lane (pid 2)
// with per-kernel args, and counter events (`phase` 'C') whose `args`
// become the counter-track series of the Chrome trace.
struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;
  std::uint32_t pid = 1;
  // 'X' complete span, 'C' counter sample, 's'/'f' flow start/finish
  // (linked arrows between spans; `flow_id` names the flow).
  char phase = 'X';
  std::vector<std::pair<std::string, double>> args;
  // String-valued args (trace/batch/request ids and the like); merged with
  // `args` into the same Chrome "args" object.
  std::vector<std::pair<std::string, std::string>> str_args;
  std::string flow_id;  // required for 's'/'f' events, ignored otherwise
};

class TraceRecorder {
 public:
  TraceRecorder();

  // Appends to the calling thread's buffer (registering it on first use).
  void record(std::string name, std::string category, double ts_us, double dur_us);

  // Full-control overload: the caller supplies every field except `tid`,
  // which is overwritten with the calling thread's lane (pid-1 events
  // only; other pids keep the caller's tid). Used for retro-recorded
  // spans (queue wait measured at dequeue), flow events, and id-tagged
  // request spans.
  void record(TraceEvent event);

  // Microseconds since this recorder's epoch (monotonic clock).
  double now_us() const noexcept;

  // Merged copy of every thread's events, ordered by begin timestamp.
  std::vector<TraceEvent> snapshot() const;

  std::size_t event_count() const;

  // Drops all recorded events (buffers stay registered).
  void clear();

  // Process-wide recorder used by TraceSpan and the built-in
  // instrumentation.
  static TraceRecorder& global();

 private:
  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };

  ThreadBuffer& local_buffer();

  mutable std::mutex registry_mutex_;
  // shared_ptr keeps buffers alive in the recorder after their thread exits.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

// RAII span recording into the global recorder. Name/category must outlive
// the span; string literals are the intended use. For dynamically-named
// regions, pass the string by value via the std::string overload.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "fastz") noexcept
      : name_(nullptr), category_(category) {
    if (!enabled()) return;
    name_ = name;
    start_us_ = TraceRecorder::global().now_us();
  }

  TraceSpan(std::string name, const char* category) : name_(nullptr), category_(category) {
    if (!enabled()) return;
    dynamic_name_ = std::move(name);
    name_ = dynamic_name_.c_str();
    start_us_ = TraceRecorder::global().now_us();
  }

  ~TraceSpan() {
    if (name_ == nullptr) return;
    TraceRecorder& rec = TraceRecorder::global();
    rec.record(name_, category_, start_us_, rec.now_us() - start_us_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const noexcept { return name_ != nullptr; }

 private:
  const char* name_;
  const char* category_;
  std::string dynamic_name_;
  double start_us_ = 0.0;
};

}  // namespace fastz::telemetry
