// Machine-readable benchmark reports ("BENCH_*.json").
//
// One BenchReport captures everything a perf-trajectory tool needs from a
// bench run: the bench name, the configuration it ran under, how many
// repeats were measured, named stage times (seconds), scalar result metrics
// (speedups, wallclocks), and integer counters (typically a
// MetricsRegistry snapshot). Schema (see docs/TELEMETRY.md):
//
//   {
//     "schema":   "fastz.bench_report/v1",
//     "name":     "fig8_breakdown",
//     "repeats":  3,
//     "config":   {"scale": "0.03", ...},          // strings, flag-like
//     "stages":   [{"name": "...", "seconds": 1.2}, ...],
//     "metrics":  {"wallclock_min_s": 1.0, ...},   // doubles
//     "counters": {"fastz.seeds": 12000, ...}      // integers
//   }
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"

namespace fastz::telemetry {

inline constexpr std::string_view kBenchReportSchema = "fastz.bench_report/v1";

struct StageTime {
  std::string name;
  double seconds = 0.0;
};

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  void set_repeats(int repeats) noexcept { repeats_ = repeats; }
  int repeats() const noexcept { return repeats_; }

  void add_config(std::string key, std::string value);
  void add_stage(std::string name, double seconds);
  void add_metric(std::string name, double value);
  void add_counter(std::string name, std::uint64_t value);
  // Appends every counter currently in `registry` (zero-valued ones are
  // skipped — an instrument that never fired is noise in a report).
  void add_registry_counters(const MetricsRegistry& registry);

  const std::vector<StageTime>& stages() const noexcept { return stages_; }
  const std::vector<std::pair<std::string, double>>& metrics() const noexcept {
    return metrics_;
  }
  double stage_total_s() const noexcept;

  void write_json(std::ostream& out) const;
  // Returns false when the file cannot be opened/written.
  bool write_file(const std::string& path) const;

 private:
  std::string name_;
  int repeats_ = 1;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<StageTime> stages_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
};

}  // namespace fastz::telemetry
