// Thread-safe registry of named counters and log-scale histograms.
//
// Counters and histograms are plain atomics once created, so concurrent
// increments never contend on the registry lock; the lock guards only
// name -> instrument resolution (and snapshotting for export). Instruments
// live for the registry's lifetime at stable addresses, so hot call sites
// may resolve once and cache the pointer.
//
// Naming convention (see docs/TELEMETRY.md): lowercase dotted paths,
// "<subsystem>.<noun>[.<unit>]", e.g. "gpusim.kernel.compute_ns",
// "fastz.ledger.score_read_bytes". Times recorded as integer counters use
// nanoseconds; byte quantities end in "_bytes".
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/quantile_sketch.hpp"

namespace fastz::telemetry {

// Monotonically increasing 64-bit counter. `add` is lock-free and safe from
// any thread; `reset` is intended for test/bench harness boundaries only.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Power-of-two (log2) bucketed histogram of unsigned values. Bucket b holds
// values v with bit_width(v) == b, i.e. bucket 0 is {0}, bucket 1 is {1},
// bucket 2 is {2,3}, bucket 3 is {4..7}, ... Recording is wait-free
// (relaxed atomics); aggregate queries are approximate under concurrent
// writers but exact once writers quiesce.
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width of uint64 is 0..64

  void record(std::uint64_t value) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const noexcept;  // 0 when empty
  std::uint64_t max() const noexcept { return max_.load(std::memory_order_relaxed); }
  double mean() const noexcept;

  std::uint64_t bucket_count(std::size_t bucket) const noexcept {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  // Inclusive value range covered by `bucket` ([0,0] for bucket 0).
  static std::uint64_t bucket_lower(std::size_t bucket) noexcept;
  static std::uint64_t bucket_upper(std::size_t bucket) noexcept;

  // Upper bound of the bucket containing the p-th percentile (p in [0,100]);
  // log-scale resolution, 0 when empty.
  std::uint64_t percentile_upper_bound(double p) const noexcept;

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

// Point-in-time copy of a histogram, for exporters. The percentile fields
// are log2 BUCKET UPPER BOUNDS (up to 2x above the true percentile) — the
// names say so; use a QuantileSketch when a real quantile is needed.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  std::uint64_t p50_bucket_upper = 0;
  std::uint64_t p99_bucket_upper = 0;
};

// Point-in-time copy of a quantile sketch, for exporters. Quantiles carry
// the sketch's relative-error bound (QuantileSketch::kRelativeError).
struct SketchSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

class MetricsRegistry {
 public:
  // Create-or-get; the returned reference stays valid for the registry's
  // lifetime, so call sites may cache it.
  Counter& counter(std::string_view name);
  LogHistogram& histogram(std::string_view name);
  QuantileSketch& sketch(std::string_view name);

  // Sorted-by-name copies of current values (zero-valued instruments are
  // included; callers filter if they want).
  std::vector<std::pair<std::string, std::uint64_t>> counter_snapshot() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> histogram_snapshot() const;
  std::vector<std::pair<std::string, SketchSnapshot>> sketch_snapshot() const;

  // Zeroes every instrument, keeping registrations (cached pointers stay
  // valid). Bench harnesses call this between repeats.
  void reset_values();

  std::size_t counter_count() const;
  std::size_t histogram_count() const;
  std::size_t sketch_count() const;

  // Process-wide registry used by the built-in instrumentation.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  // unique_ptr nodes give stable addresses across rehash-free std::map; the
  // map itself is never erased from.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<LogHistogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<QuantileSketch>, std::less<>> sketches_;
};

}  // namespace fastz::telemetry
