#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace fastz::telemetry {

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::element_prefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key; the key already wrote the comma
  }
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ << ',';
    }
  }
}

JsonWriter& JsonWriter::begin_object() {
  element_prefix();
  out_ << '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  first_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element_prefix();
  out_ << '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  first_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  element_prefix();
  out_ << '"' << json_escape(k) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  element_prefix();
  out_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  element_prefix();
  if (!std::isfinite(v)) {
    out_ << "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  element_prefix();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  element_prefix();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  element_prefix();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  element_prefix();
  out_ << "null";
  return *this;
}

// ---- Parser -----------------------------------------------------------------

bool JsonValue::as_bool() const {
  if (type_ != Type::Bool) throw std::runtime_error("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::Number) throw std::runtime_error("JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::String) throw std::runtime_error("JsonValue: not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (type_ != Type::Array) throw std::runtime_error("JsonValue: not an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (type_ != Type::Object) throw std::runtime_error("JsonValue: not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("JsonValue: missing key '" + std::string(key) + "'");
  }
  return *v;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " + std::to_string(pos_) + ": " +
                             what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::String;
        v.string_ = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.type_ = JsonValue::Type::Bool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.type_ = JsonValue::Type::Bool;
        v.bool_ = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::Object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::Array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return code;
  }

  void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: expect \uDC00..\uDFFF to complete the pair.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const std::uint32_t low = parse_hex4();
              if (low < 0xDC00 || low > 0xDFFF) fail("unpaired surrogate");
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              fail("unpaired surrogate");
            }
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (peek() == '0') {
      ++pos_;
    } else if (peek() >= '1' && peek() <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    } else {
      fail("bad number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!(peek() >= '0' && peek() <= '9')) fail("bad fraction");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!(peek() >= '0' && peek() <= '9')) fail("bad exponent");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    JsonValue v;
    v.type_ = JsonValue::Type::Number;
    v.number_ = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace fastz::telemetry
