#include "telemetry/metrics.hpp"

#include <bit>

namespace fastz::telemetry {

void LogHistogram::record(std::uint64_t value) noexcept {
  const std::size_t bucket = static_cast<std::size_t>(std::bit_width(value));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);

  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t LogHistogram::min() const noexcept {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

double LogHistogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t LogHistogram::bucket_lower(std::size_t bucket) noexcept {
  return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}

std::uint64_t LogHistogram::bucket_upper(std::size_t bucket) noexcept {
  if (bucket == 0) return 0;
  if (bucket >= 64) return UINT64_MAX;
  return (std::uint64_t{1} << bucket) - 1;
}

std::uint64_t LogHistogram::percentile_upper_bound(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the percentile element (1-based, ceil) within the sorted data.
  std::uint64_t rank = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(n));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += bucket_count(b);
    if (seen >= rank) return bucket_upper(b);
  }
  return max();
}

void LogHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

LogHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<LogHistogram>()).first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counter_snapshot()
    const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::histogram_snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    snap.count = h->count();
    snap.sum = h->sum();
    snap.min = h->min();
    snap.max = h->max();
    snap.mean = h->mean();
    snap.p50_bucket_upper = h->percentile_upper_bound(50.0);
    snap.p99_bucket_upper = h->percentile_upper_bound(99.0);
    out.emplace_back(name, snap);
  }
  return out;
}

QuantileSketch& MetricsRegistry::sketch(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = sketches_.find(name);
  if (it == sketches_.end()) {
    it = sketches_.emplace(std::string(name), std::make_unique<QuantileSketch>())
             .first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, SketchSnapshot>>
MetricsRegistry::sketch_snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, SketchSnapshot>> out;
  out.reserve(sketches_.size());
  for (const auto& [name, s] : sketches_) {
    SketchSnapshot snap;
    snap.count = s->count();
    snap.sum = s->sum();
    snap.min = s->min();
    snap.max = s->max();
    snap.p50 = s->quantile(0.50);
    snap.p99 = s->quantile(0.99);
    snap.p999 = s->quantile(0.999);
    out.emplace_back(name, snap);
  }
  return out;
}

void MetricsRegistry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, s] : sketches_) s->reset();
}

std::size_t MetricsRegistry::counter_count() const {
  std::lock_guard lock(mutex_);
  return counters_.size();
}

std::size_t MetricsRegistry::histogram_count() const {
  std::lock_guard lock(mutex_);
  return histograms_.size();
}

std::size_t MetricsRegistry::sketch_count() const {
  std::lock_guard lock(mutex_);
  return sketches_.size();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace fastz::telemetry
