// Seed-word index and seed-hit enumeration (stage 1 of the WGA pipeline).
//
// The index stores every (word, position) of the target sequence sorted by
// word; queries binary-search the word's range. The sort-based layout keeps
// memory proportional to the sequence (a direct-addressed table over the
// 4^12 word space would dwarf small inputs) and gives cache-friendly
// sequential hit enumeration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "seed/spaced_seed.hpp"
#include "sequence/sequence.hpp"

namespace fastz {

// A seed hit: `a_pos` / `b_pos` are the starting offsets of the matching
// seed window in the target (A) and query (B) sequences.
struct SeedHit {
  std::uint32_t a_pos = 0;
  std::uint32_t b_pos = 0;

  friend bool operator==(const SeedHit&, const SeedHit&) = default;
};

class SeedIndex {
 public:
  // Builds the index over `target`. `step` indexes every step-th position
  // (LASTZ's Z parameter; default 1 = every position).
  SeedIndex(const Sequence& target, const SpacedSeed& seed, std::uint32_t step = 1);

  const SpacedSeed& seed() const noexcept { return seed_; }
  std::size_t indexed_positions() const noexcept { return entries_.size(); }

  // Target positions whose word equals `word` (ascending).
  std::span<const std::uint32_t> lookup(std::uint32_t word) const noexcept;

  // Enumerates all seed hits against `query`. `max_hits` caps the result by
  // deterministic uniform downsampling (the paper evaluates a fixed number
  // of seed sites per benchmark — Section 4: "a million seed sites");
  // 0 means unlimited.
  //
  // `allow_one_transition` implements LASTZ's default seed tolerance: a hit
  // may additionally differ by a single transition (A<->G or C<->T) at one
  // care position. Each query word then probes its 12 transition variants
  // besides itself, which raises sensitivity in diverged DNA where
  // transitions dominate substitutions.
  std::vector<SeedHit> find_hits(const Sequence& query, std::size_t max_hits = 0,
                                 std::uint64_t sample_seed = 0x5eedull,
                                 bool allow_one_transition = false) const;

 private:
  struct Entry {
    std::uint32_t word;
    std::uint32_t pos;
  };

  SpacedSeed seed_;
  std::vector<Entry> entries_;      // sorted by (word, pos)
  std::vector<std::uint32_t> positions_;  // pos of entries_, same order
};

// Deterministically downsamples `hits` to `target_count` elements, uniformly
// across the input order (exposed for tests).
std::vector<SeedHit> downsample_hits(std::vector<SeedHit> hits, std::size_t target_count,
                                     std::uint64_t seed);

}  // namespace fastz
