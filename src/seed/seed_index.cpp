#include "seed/seed_index.hpp"

#include <algorithm>

#include "util/prng.hpp"

namespace fastz {

SeedIndex::SeedIndex(const Sequence& target, const SpacedSeed& seed, std::uint32_t step)
    : seed_(seed) {
  if (step == 0) step = 1;
  const std::size_t span = seed_.span();
  if (target.size() < span) return;
  const std::size_t last = target.size() - span;
  entries_.reserve(last / step + 1);
  const auto codes = target.codes();
  for (std::size_t pos = 0; pos <= last; pos += step) {
    entries_.push_back({seed_.word_at(codes, pos), static_cast<std::uint32_t>(pos)});
  }
  std::sort(entries_.begin(), entries_.end(), [](const Entry& x, const Entry& y) {
    return x.word < y.word || (x.word == y.word && x.pos < y.pos);
  });
  positions_.resize(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) positions_[i] = entries_[i].pos;
}

std::span<const std::uint32_t> SeedIndex::lookup(std::uint32_t word) const noexcept {
  const auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), word,
      [](const Entry& e, std::uint32_t w) { return e.word < w; });
  auto hi = lo;
  while (hi != entries_.end() && hi->word == word) ++hi;
  const auto offset = static_cast<std::size_t>(lo - entries_.begin());
  return {positions_.data() + offset, static_cast<std::size_t>(hi - lo)};
}

std::vector<SeedHit> SeedIndex::find_hits(const Sequence& query, std::size_t max_hits,
                                          std::uint64_t sample_seed,
                                          bool allow_one_transition) const {
  std::vector<SeedHit> hits;
  const std::size_t span = seed_.span();
  if (query.size() < span || entries_.empty()) return hits;
  const auto codes = query.codes();
  const std::size_t last = query.size() - span;
  const std::size_t weight = seed_.weight();
  for (std::size_t qpos = 0; qpos <= last; ++qpos) {
    const std::uint32_t word = seed_.word_at(codes, qpos);
    for (std::uint32_t tpos : lookup(word)) {
      hits.push_back({tpos, static_cast<std::uint32_t>(qpos)});
    }
    if (allow_one_transition) {
      // A transition flips the high bit of a base's 2-bit code (A=00 <->
      // G=10, C=01 <-> T=11), so each care position's variant is one XOR.
      for (std::size_t k = 0; k < weight; ++k) {
        const std::uint32_t variant =
            word ^ (0b10u << (2 * (weight - 1 - k)));
        for (std::uint32_t tpos : lookup(variant)) {
          hits.push_back({tpos, static_cast<std::uint32_t>(qpos)});
        }
      }
    }
  }
  if (max_hits != 0 && hits.size() > max_hits) {
    hits = downsample_hits(std::move(hits), max_hits, sample_seed);
  }
  return hits;
}

std::vector<SeedHit> downsample_hits(std::vector<SeedHit> hits, std::size_t target_count,
                                     std::uint64_t seed) {
  if (hits.size() <= target_count) return hits;
  // Reservoir-free uniform pick: choose a random sorted subset of indices by
  // stepping with jitter. A full Fisher-Yates of millions of hits would be
  // fine too, but this preserves the original (diagonal-ish) order, which
  // downstream batching benefits from.
  Xoshiro256 rng(seed);
  std::vector<SeedHit> out;
  out.reserve(target_count);
  const double stride = static_cast<double>(hits.size()) / static_cast<double>(target_count);
  double cursor = rng.uniform() * stride;
  while (out.size() < target_count && cursor < static_cast<double>(hits.size())) {
    out.push_back(hits[static_cast<std::size_t>(cursor)]);
    cursor += stride;
  }
  while (out.size() < target_count) out.push_back(hits.back());
  return out;
}

}  // namespace fastz
