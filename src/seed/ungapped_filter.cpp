#include "seed/ungapped_filter.hpp"

#include <algorithm>

namespace fastz {

UngappedHsp extend_ungapped(const Sequence& a, const Sequence& b, const SeedHit& hit,
                            std::size_t seed_span, const ScoreParams& params) {
  UngappedHsp hsp;
  hsp.seed = hit;

  // Score of the seed window itself.
  Score seed_score = 0;
  for (std::size_t k = 0; k < seed_span; ++k) {
    seed_score += params.substitution(a[hit.a_pos + k], b[hit.b_pos + k]);
  }

  // Rightward extension from the end of the seed.
  Score right_best = 0;
  std::size_t right_len = 0;
  {
    Score running = 0;
    std::size_t ai = hit.a_pos + seed_span;
    std::size_t bi = hit.b_pos + seed_span;
    std::size_t len = 0;
    while (ai < a.size() && bi < b.size()) {
      running += params.substitution(a[ai], b[bi]);
      ++ai, ++bi, ++len;
      if (running > right_best) {
        right_best = running;
        right_len = len;
      } else if (running < right_best - params.xdrop) {
        break;
      }
    }
  }

  // Leftward extension from the start of the seed.
  Score left_best = 0;
  std::size_t left_len = 0;
  {
    Score running = 0;
    std::size_t ai = hit.a_pos;
    std::size_t bi = hit.b_pos;
    std::size_t len = 0;
    while (ai > 0 && bi > 0) {
      --ai, --bi, ++len;
      running += params.substitution(a[ai], b[bi]);
      if (running > left_best) {
        left_best = running;
        left_len = len;
      } else if (running < left_best - params.xdrop) {
        break;
      }
    }
  }

  hsp.a_begin = hit.a_pos - static_cast<std::uint32_t>(left_len);
  hsp.b_begin = hit.b_pos - static_cast<std::uint32_t>(left_len);
  hsp.a_end = hit.a_pos + static_cast<std::uint32_t>(seed_span + right_len);
  hsp.b_end = hit.b_pos + static_cast<std::uint32_t>(seed_span + right_len);
  hsp.score = seed_score + left_best + right_best;
  return hsp;
}

std::vector<UngappedHsp> filter_seeds(const Sequence& a, const Sequence& b,
                                      const std::vector<SeedHit>& hits,
                                      std::size_t seed_span, const ScoreParams& params) {
  std::vector<UngappedHsp> kept;
  for (const auto& hit : hits) {
    UngappedHsp hsp = extend_ungapped(a, b, hit, seed_span, params);
    if (hsp.score >= params.ungapped_threshold) kept.push_back(hsp);
  }
  return kept;
}

}  // namespace fastz
