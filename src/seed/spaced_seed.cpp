#include "seed/spaced_seed.hpp"

#include <stdexcept>

namespace fastz {

SpacedSeed::SpacedSeed(std::string_view pattern) : pattern_(pattern), span_(pattern.size()) {
  if (pattern.empty()) throw std::invalid_argument("SpacedSeed: empty pattern");
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    switch (pattern[i]) {
      case '1':
        care_.push_back(static_cast<std::uint32_t>(i));
        break;
      case '0':
        break;
      default:
        throw std::invalid_argument("SpacedSeed: pattern must be 0/1");
    }
  }
  if (care_.empty()) throw std::invalid_argument("SpacedSeed: zero weight");
  if (care_.size() > 16) throw std::invalid_argument("SpacedSeed: weight > 16");
}

std::uint32_t SpacedSeed::word_at(std::span<const BaseCode> seq, std::size_t pos) const noexcept {
  std::uint32_t word = 0;
  for (std::uint32_t offset : care_) {
    word = (word << 2) | (seq[pos + offset] & 3u);
  }
  return word;
}

}  // namespace fastz
