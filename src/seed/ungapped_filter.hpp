// Ungapped x-drop extension filter (stage 2 of the WGA pipeline).
//
// This is the filtering stage whose use distinguishes "ungapped LASTZ"
// (faster, less sensitive — what SegAlign accelerates) from the
// high-sensitivity "gapped LASTZ" that FastZ targets. Each seed hit is
// extended without gaps in both directions; extension in a direction stops
// when the running score falls `xdrop` below the best seen. Hits whose best
// ungapped score (HSP score) is below `ungapped_threshold` are discarded —
// dropping some seeds that gapped extension would have grown into
// high-scoring alignments, which is exactly the sensitivity loss Figure 2
// of the paper illustrates.
#pragma once

#include <cstdint>
#include <vector>

#include "score/score_params.hpp"
#include "seed/seed_index.hpp"
#include "sequence/sequence.hpp"

namespace fastz {

// An ungapped high-scoring segment pair.
struct UngappedHsp {
  SeedHit seed;              // the originating hit
  std::uint32_t a_begin = 0; // extended segment in A, [a_begin, a_end)
  std::uint32_t a_end = 0;
  std::uint32_t b_begin = 0; // same length segment in B
  std::uint32_t b_end = 0;
  Score score = 0;
};

// Extends one seed hit without gaps. Always succeeds; the caller compares
// `score` against the threshold.
UngappedHsp extend_ungapped(const Sequence& a, const Sequence& b, const SeedHit& hit,
                            std::size_t seed_span, const ScoreParams& params);

// Applies the filter to all hits; returns the seeds whose HSP score clears
// `params.ungapped_threshold`, along with their HSPs.
std::vector<UngappedHsp> filter_seeds(const Sequence& a, const Sequence& b,
                                      const std::vector<SeedHit>& hits,
                                      std::size_t seed_span, const ScoreParams& params);

}  // namespace fastz
