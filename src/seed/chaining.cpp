#include "seed/chaining.hpp"

#include <algorithm>
#include <cmath>

namespace fastz {

namespace {

// Connection penalty between consecutive anchors x -> y (y after x).
double connection_penalty(const UngappedHsp& x, const UngappedHsp& y,
                          const ChainOptions& options) {
  const auto diag = [](const UngappedHsp& h) {
    return static_cast<std::int64_t>(h.a_begin) - static_cast<std::int64_t>(h.b_begin);
  };
  const double diag_dist = std::abs(static_cast<double>(diag(y) - diag(x)));
  const double anti_dist =
      static_cast<double>((y.a_begin + y.b_begin) - (x.a_end + x.b_end));
  return options.diag_penalty * diag_dist +
         options.anti_penalty * std::max(0.0, anti_dist);
}

// y strictly follows x in both coordinates (colinearity).
bool follows(const UngappedHsp& x, const UngappedHsp& y) {
  return y.a_begin >= x.a_end && y.b_begin >= x.b_end;
}

}  // namespace

std::vector<UngappedHsp> best_chain(std::vector<UngappedHsp> hsps,
                                    const ChainOptions& options) {
  if (hsps.empty()) return {};
  std::sort(hsps.begin(), hsps.end(), [](const UngappedHsp& x, const UngappedHsp& y) {
    return x.a_begin < y.a_begin || (x.a_begin == y.a_begin && x.b_begin < y.b_begin);
  });

  const std::size_t n = hsps.size();
  std::vector<double> best(n);
  std::vector<std::ptrdiff_t> prev(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    best[i] = static_cast<double>(hsps[i].score);
    for (std::size_t j = 0; j < i; ++j) {
      if (!follows(hsps[j], hsps[i])) continue;
      const double candidate = best[j] + static_cast<double>(hsps[i].score) -
                               connection_penalty(hsps[j], hsps[i], options);
      if (candidate > best[i]) {
        best[i] = candidate;
        prev[i] = static_cast<std::ptrdiff_t>(j);
      }
    }
  }

  std::size_t tail = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (best[i] > best[tail]) tail = i;
  }

  std::vector<UngappedHsp> chain;
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(tail); i >= 0; i = prev[i]) {
    chain.push_back(hsps[static_cast<std::size_t>(i)]);
    if (prev[i] < 0) break;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

double chain_score(const std::vector<UngappedHsp>& chain, const ChainOptions& options) {
  double score = 0.0;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    score += static_cast<double>(chain[i].score);
    if (i > 0) score -= connection_penalty(chain[i - 1], chain[i], options);
  }
  return score;
}

}  // namespace fastz
