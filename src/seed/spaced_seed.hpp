// Spaced-seed word extraction.
//
// LASTZ's default seed is the 19-bp "12-of-19" spaced pattern
// 1110100110010101111: a seed hit requires exact base identity at the twelve
// `1` positions; the seven `0` positions are wildcards. Spaced seeds are
// more sensitive than contiguous k-mers at equal weight (Ma, Tromp & Li
// 2002), which is why LASTZ (and stage 1 of the paper's pipeline, Section 2)
// uses them.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sequence/dna.hpp"

namespace fastz {

class SpacedSeed {
 public:
  // `pattern` is a string of '1' (care) and '0' (wildcard) characters.
  // Throws std::invalid_argument for empty patterns, other characters, or
  // weight > 16 (words must fit 32 bits at 2 bits/base).
  explicit SpacedSeed(std::string_view pattern);

  // LASTZ's default 12-of-19 seed.
  static SpacedSeed lastz_default() { return SpacedSeed("1110100110010101111"); }

  std::size_t span() const noexcept { return span_; }      // total pattern length
  std::size_t weight() const noexcept { return care_.size(); }  // number of care positions
  const std::string& pattern() const noexcept { return pattern_; }

  // Number of distinct words = 4^weight.
  std::uint64_t word_space() const noexcept { return 1ull << (2 * weight()); }

  // Packs the care-position bases of window [pos, pos + span) into a word.
  // Pre: pos + span() <= sequence length.
  std::uint32_t word_at(std::span<const BaseCode> seq, std::size_t pos) const noexcept;

  // Positions (relative to the window start) that participate in the word.
  std::span<const std::uint32_t> care_positions() const noexcept { return care_; }

 private:
  std::string pattern_;
  std::size_t span_ = 0;
  std::vector<std::uint32_t> care_;
};

}  // namespace fastz
