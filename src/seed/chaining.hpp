// HSP chaining (LASTZ's optional --chain stage).
//
// After ungapped filtering, LASTZ can reduce the anchor list to the single
// best-scoring *colinear chain* of HSPs: a subsequence whose target and
// query coordinates both strictly increase. Chaining throws away repeat-
// induced off-diagonal anchors before the expensive gapped stage — another
// sequential-flavored work reduction in the same spirit as Section 2.1's
// (FastZ's evaluation, like the paper's, runs the unchained pipeline; the
// stage is provided for drop-in completeness).
//
// Scoring follows LASTZ's simple model: the chain's score is the sum of its
// HSP scores minus connection penalties proportional to the diagonal and
// anti-diagonal distance between consecutive anchors.
#pragma once

#include <cstdint>
#include <vector>

#include "seed/ungapped_filter.hpp"

namespace fastz {

struct ChainOptions {
  // Penalty per unit of diagonal difference between consecutive anchors
  // (LASTZ's "chain diagonal penalty", default 0 there; a small value keeps
  // chains tight).
  double diag_penalty = 0.0;
  // Penalty per unit of anti-diagonal (progression) distance.
  double anti_penalty = 0.0;
};

// Returns the maximum-scoring colinear chain, in coordinate order.
// O(n^2) dynamic program over anchors sorted by (a_begin, b_begin); anchor
// counts after filtering are small (hundreds), so the quadratic cost is
// irrelevant next to the DP stage.
std::vector<UngappedHsp> best_chain(std::vector<UngappedHsp> hsps,
                                    const ChainOptions& options = {});

// Total score of a chain under the connection-penalty model (exposed for
// tests).
double chain_score(const std::vector<UngappedHsp>& chain, const ChainOptions& options);

}  // namespace fastz
