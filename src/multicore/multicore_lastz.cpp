#include "multicore/multicore_lastz.hpp"

#include <algorithm>
#include <atomic>

#include "align/extension.hpp"
#include "telemetry/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace fastz {

namespace {

struct SeedOutcome {
  Alignment alignment;
  std::uint64_t cells = 0;
  bool reported = false;
};

}  // namespace

MulticoreResult run_multicore_lastz(const Sequence& a, const Sequence& b,
                                    const ScoreParams& params,
                                    const PipelineOptions& options,
                                    const MulticoreOptions& mc) {
  params.validate();
  telemetry::TraceSpan pipeline_span("multicore.pipeline", "pool");
  MulticoreResult result;
  Timer total;

  Timer stage;
  const SpacedSeed seed = SpacedSeed::lastz_default();
  const std::vector<SeedHit> hits = enumerate_seeds(a, b, options);
  result.counters.seed_hits = hits.size();
  result.counters.seeds_extended = hits.size();
  result.counters.seed_time_s = stage.elapsed_s();

  stage.reset();
  ThreadPool pool(mc.threads);
  result.threads_used = pool.size();

  // Per-seed outcome slots keep the output in seed order regardless of the
  // schedule, making static and dynamic runs (and the sequential pipeline)
  // produce identical alignment lists.
  std::vector<SeedOutcome> outcomes(hits.size());

  auto process = [&](std::size_t k) {
    GappedExtension ext =
        extend_seed(a, b, hits[k], seed.span(), params, options.one_sided);
    outcomes[k].cells = ext.total_cells();
    if (ext.alignment.score >= params.gapped_threshold) {
      outcomes[k].alignment = std::move(ext.alignment);
      outcomes[k].reported = true;
    }
  };

  if (mc.dynamic_schedule) {
    // Work stealing: workers claim chunks from a shared cursor.
    std::atomic<std::size_t> cursor{0};
    const std::size_t chunk = std::max<std::size_t>(1, mc.chunk);
    std::vector<std::future<void>> workers;
    workers.reserve(pool.size());
    for (std::size_t w = 0; w < pool.size(); ++w) {
      workers.push_back(pool.submit([&] {
        telemetry::TraceSpan worker_span("multicore.worker", "pool");
        for (;;) {
          const std::size_t begin = cursor.fetch_add(chunk);
          if (begin >= outcomes.size()) return;
          const std::size_t end = std::min(outcomes.size(), begin + chunk);
          for (std::size_t k = begin; k < end; ++k) process(k);
        }
      }));
    }
    for (auto& w : workers) w.get();
  } else {
    // Static contiguous partitions — the paper's multi-process scheme.
    pool.parallel_for(outcomes.size(), process);
  }

  for (SeedOutcome& outcome : outcomes) {
    result.counters.dp_cells += outcome.cells;
    if (outcome.reported) {
      result.counters.traceback_columns += outcome.alignment.ops.size();
      result.alignments.push_back(std::move(outcome.alignment));
    }
  }
  if (options.deduplicate) deduplicate_alignments(result.alignments);
  result.counters.extend_time_s = stage.elapsed_s();
  result.counters.total_time_s = total.elapsed_s();

  result.modeled_time_s = gpusim::multicore_lastz_time_s(
      result.counters.dp_cells, gpusim::ryzen_3950x(), mc.model_processes);
  return result;
}

}  // namespace fastz
