// Multicore LASTZ: coarse-grained inter-seed parallelism.
//
// The paper's multicore comparison point (Section 3.4) partitions the seed
// list across processes, each running the default sequential DP on its
// partition. Here partitions run on a thread pool; results are concatenated
// in seed order so the output is bit-identical to the sequential pipeline
// regardless of thread count or schedule (verified by tests).
//
// Two schedules are provided:
//   * static (the paper's scheme): one contiguous partition per worker;
//   * dynamic: workers claim fixed-size seed chunks from a shared counter
//     (work stealing), which smooths the load imbalance long alignments
//     cause in static partitions.
//
// FastZ's GPU innovations deliberately do not apply here (Section 3.4):
// no slow device-side allocation to motivate inspector-executor, too few
// architectural registers for cyclic buffers, no bulk-synchronous kernels
// to load-balance, and row-major traversal is already memory-friendly.
//
// The paper reports 20x on a 16-core Ryzen 3950x with 32 processes — capped
// below 32x by DRAM bandwidth; `gpusim::multicore_lastz_time_s` models that
// cap for the figure benches, while `run_multicore_lastz` really executes
// the partitioned pipeline (its wall-clock depends on this machine's cores).
#pragma once

#include <cstdint>

#include "align/lastz_pipeline.hpp"
#include "gpusim/device_spec.hpp"
#include "sequence/sequence.hpp"

namespace fastz {

struct MulticoreOptions {
  std::size_t threads = 0;           // 0 = hardware concurrency
  std::uint32_t model_processes = 32;  // workers in the analytic model
  bool dynamic_schedule = false;     // work-stealing instead of static parts
  std::size_t chunk = 16;            // seeds per dynamic work item
};

struct MulticoreResult {
  std::vector<Alignment> alignments;
  PipelineCounters counters;
  std::size_t threads_used = 0;
  // Modeled time on the paper's 16-core Ryzen with `model_processes`
  // workers (from the DP cell count and the bandwidth roofline).
  double modeled_time_s = 0.0;
};

MulticoreResult run_multicore_lastz(const Sequence& a, const Sequence& b,
                                    const ScoreParams& params,
                                    const PipelineOptions& options = {},
                                    const MulticoreOptions& mc = {});

}  // namespace fastz
