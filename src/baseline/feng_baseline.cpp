#include "baseline/feng_baseline.hpp"

namespace fastz {

namespace {

// One side's cost: the explored region sweeps (rows + width) anti-diagonals;
// each diagonal computes up to `width` cells spread over ceil(width/32)
// warps running concurrently on different SMs, then synchronizes.
void add_side(const SideInspection& side, const gpusim::DeviceSpec& device,
              FengBaselineResult& out) {
  const std::uint64_t diagonals = std::uint64_t{side.rows} + side.max_width;
  if (diagonals == 0) return;
  out.diagonals += diagonals;

  // Per-diagonal compute: the diagonal's cells run as ceil(width/32) warps
  // spread over SMs; each warp executes the 9-op recurrence under
  // divergence derating, and warps co-resident on an SM share its issue
  // slots.
  const std::uint64_t warps = (std::uint64_t{side.max_width} + 31) / 32;
  const double warps_per_sm =
      std::max(1.0, static_cast<double>(warps) / device.sm_count);
  const double step_s = warps_per_sm * gpusim::kOpsPerCell * device.divergence_derate /
                        (device.clock_ghz * 1e9);
  out.compute_time_s += static_cast<double>(diagonals) * step_s;
  out.sync_time_s += static_cast<double>(diagonals) * kDiagonalSyncSeconds;

  out.kernel_launches += 1;
  out.launch_time_s += kFengLaunchSeconds;
}

}  // namespace

FengBaselineResult model_feng_baseline(const FastzStudy& study,
                                       const gpusim::DeviceSpec& device) {
  FengBaselineResult out;
  for (const SeedWork& work : study.seed_work()) {
    add_side(work.inspection.left, device, out);
    add_side(work.inspection.right, device, out);
  }
  out.modeled_time_s = out.compute_time_s + out.sync_time_s + out.launch_time_s;
  return out;
}

}  // namespace fastz
