// GPU baseline: single-problem Smith-Waterman parallelism (Feng et al.).
//
// The paper's GPU comparison point (Sections 2.3 and 4) parallelizes ONE
// seed extension at a time across the whole device: the cells of each
// anti-diagonal are computed in parallel (with the coalescing layout
// transformation), and every diagonal ends with a device-wide
// synchronization before the next can start. Two structural costs make it
// *slower* than sequential LASTZ (Figure 7 shows 18-43% slowdowns):
//
//   * parallelism is bounded by the diagonal width (a few hundred cells),
//     leaving thousands of lanes idle; and
//   * the diagonal-to-diagonal dependency forces a synchronization per
//     diagonal and a kernel launch per extension.
//
// The model below charges, per seed extension: the per-diagonal compute
// (warp-steps of the widest active interval), a per-diagonal sync cost, and
// a per-side kernel launch. Diagonal counts and widths come from the real
// explored regions recorded by the functional pass.
#pragma once

#include <cstdint>

#include "fastz/fastz_pipeline.hpp"
#include "gpusim/device_spec.hpp"

namespace fastz {

struct FengBaselineResult {
  double modeled_time_s = 0.0;
  std::uint64_t diagonals = 0;       // synchronization points
  std::uint64_t kernel_launches = 0; // two per seed (left/right)
  double sync_time_s = 0.0;
  double compute_time_s = 0.0;
  double launch_time_s = 0.0;
};

// Per-diagonal grid-wide synchronization cost. The baseline spreads one
// extension's diagonal across warps on multiple SMs (Section 2.3), so every
// diagonal ends with an inter-SM barrier — this is the cost the paper
// blames for the baseline's slowdowns. The governing ratio is per-diagonal
// sync versus per-diagonal *sequential* work (the active interval width /
// CPU cell rate); the constant is calibrated so that, at the harness's
// scaled y-drop (band width ~130 vs the paper's ~600+ under Y=9400), the
// baseline-to-sequential ratio lands in the paper's measured 0.57-0.82x
// slowdown band.
inline constexpr double kDiagonalSyncSeconds = 0.35e-6;

// Kernel-launch cost per one-sided extension (including the host-side
// stream synchronization between consecutive seeds).
inline constexpr double kFengLaunchSeconds = 10e-6;

FengBaselineResult model_feng_baseline(const FastzStudy& study,
                                       const gpusim::DeviceSpec& device);

}  // namespace fastz
