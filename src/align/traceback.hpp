// Packed traceback codes and the shared traceback walk.
//
// The FastZ executor compresses the per-cell traceback state of all three
// scoring matrices into a single byte (Section 3.1.3: the S recurrence picks
// among 3 choices — 2 bits; I and D each pick among 2 — 1 bit each). The
// same packing is used by the sequential oracle, the executor, and the
// inspector's 16x16 eager tile so that one traceback walker serves all of
// them (and tests can compare their outputs structurally).
//
// Layout of a code byte:
//   bits 0-1  source of S:   0 = diagonal (match/substitution)
//                            1 = I matrix (gap in A)
//                            2 = D matrix (gap in B)
//                            3 = origin cell (0,0) / unreachable
//   bit 2     I was opened from S (1) rather than extended from I (0)
//   bit 3     D was opened from S (1) rather than extended from D (0)
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "align/alignment.hpp"

namespace fastz {

using TraceCode = std::uint8_t;

inline constexpr TraceCode kTraceSrcDiag = 0;
inline constexpr TraceCode kTraceSrcI = 1;
inline constexpr TraceCode kTraceSrcD = 2;
inline constexpr TraceCode kTraceSrcOrigin = 3;

constexpr TraceCode make_trace(TraceCode s_src, bool i_open, bool d_open) noexcept {
  return static_cast<TraceCode>((s_src & 3u) | (i_open ? 4u : 0u) | (d_open ? 8u : 0u));
}

constexpr TraceCode trace_s_src(TraceCode code) noexcept { return code & 3u; }
constexpr bool trace_i_open(TraceCode code) noexcept { return (code & 4u) != 0; }
constexpr bool trace_d_open(TraceCode code) noexcept { return (code & 8u) != 0; }

// Walks traceback codes from cell (i, j) back to the origin (0, 0) and
// returns the edit operations in forward order. `code_at(i, j)` must return
// the packed code for any visited cell. Throws std::runtime_error if the
// walk escapes the matrix (corrupt traceback state).
template <typename CodeAt>
std::vector<AlignOp> walk_traceback(std::uint32_t i, std::uint32_t j, CodeAt&& code_at) {
  std::vector<AlignOp> ops;
  ops.reserve(static_cast<std::size_t>(i) + j);
  enum class State { S, I, D };
  State state = State::S;
  // Every second iteration consumes a base of A or B (S->I/D transitions
  // consume nothing), so the walk takes at most 2(i + j) + 1 steps; anything
  // longer means a cycle in the codes.
  const std::uint64_t step_limit = 2 * (static_cast<std::uint64_t>(i) + j) + 1;
  std::uint64_t steps = 0;
  while (!(i == 0 && j == 0 && state == State::S)) {
    if (++steps > step_limit) {
      throw std::runtime_error("walk_traceback: cycle in traceback codes");
    }
    const TraceCode code = code_at(i, j);
    switch (state) {
      case State::S:
        switch (trace_s_src(code)) {
          case kTraceSrcDiag:
            if (i == 0 || j == 0) throw std::runtime_error("walk_traceback: diag at border");
            ops.push_back(AlignOp::Match);
            --i, --j;
            break;
          case kTraceSrcI:
            state = State::I;
            break;
          case kTraceSrcD:
            state = State::D;
            break;
          default:
            throw std::runtime_error("walk_traceback: origin code before (0,0)");
        }
        break;
      case State::I:
        if (j == 0) throw std::runtime_error("walk_traceback: I at column 0");
        ops.push_back(AlignOp::Insert);
        state = trace_i_open(code) ? State::S : State::I;
        --j;
        break;
      case State::D:
        if (i == 0) throw std::runtime_error("walk_traceback: D at row 0");
        ops.push_back(AlignOp::Delete);
        state = trace_d_open(code) ? State::S : State::D;
        --i;
        break;
    }
  }
  std::reverse(ops.begin(), ops.end());
  return ops;
}

}  // namespace fastz
