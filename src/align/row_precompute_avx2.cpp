// 256-bit x86 row-precompute instantiations (compiled with -mavx2, see
// src/align/CMakeLists.txt; reached only when the CPU reports AVX2).
#if defined(__AVX2__)
#include "align/row_precompute_impl.hpp"

namespace fastz::detail {

void row_precompute_avx2(const Score* s_up, const Score* s_diag, const Score* gd_up,
                         const Score* prof, Score open_extend, Score extend_only,
                         std::size_t count, Score* d_val, Score* diag,
                         std::uint8_t* d_opened) {
  row_precompute_vec<simd::VecAvx2, true>(s_up, s_diag, gd_up, prof, open_extend,
                                          extend_only, count, d_val, diag, d_opened);
}

void row_precompute_plain_avx2(const Score* s_up, const Score* s_diag, const Score* gd_up,
                               const Score* prof, Score open_extend, Score extend_only,
                               std::size_t count, Score* d_val, Score* diag,
                               std::uint8_t* d_opened) {
  row_precompute_vec<simd::VecAvx2, false>(s_up, s_diag, gd_up, prof, open_extend,
                                           extend_only, count, d_val, diag, d_opened);
}

}  // namespace fastz::detail
#endif
