// Both-strand whole-genome alignment.
//
// DNA homology can sit on either strand; LASTZ searches the query's forward
// and reverse-complement orientations and reports minus-strand alignments
// with flipped query coordinates. This driver runs the chosen pipeline
// twice — once against B and once against revcomp(B) — and maps the
// reverse-pass coordinates back onto B's forward strand.
//
// A reverse-strand alignment's ops describe the path through revcomp(B);
// `StrandAlignment` keeps them in that frame (so they can be rescored
// against the stored `rc_query`) and carries the forward-strand B interval
// for reporting.
#pragma once

#include <cstdint>
#include <vector>

#include "align/lastz_pipeline.hpp"
#include "sequence/sequence.hpp"

namespace fastz {

struct StrandAlignment {
  Alignment alignment;        // coordinates in the searched frame
  bool reverse_strand = false;
  // B interval mapped to the forward strand (equal to the alignment's own
  // interval for forward-strand hits).
  std::uint64_t b_forward_begin = 0;
  std::uint64_t b_forward_end = 0;
};

struct StrandSearchResult {
  std::vector<StrandAlignment> alignments;
  Sequence rc_query;  // revcomp(B), the frame of reverse-strand alignments
  PipelineCounters forward_counters;
  PipelineCounters reverse_counters;

  std::size_t forward_count() const;
  std::size_t reverse_count() const;
};

// Runs sequential gapped LASTZ on both strands of `b`.
StrandSearchResult run_lastz_both_strands(const Sequence& a, const Sequence& b,
                                          const ScoreParams& params,
                                          const PipelineOptions& options = {});

// Maps an interval on revcomp(B) back to forward-strand coordinates.
inline std::pair<std::uint64_t, std::uint64_t> map_to_forward(
    std::uint64_t rc_begin, std::uint64_t rc_end, std::uint64_t b_length) noexcept {
  return {b_length - rc_end, b_length - rc_begin};
}

}  // namespace fastz
