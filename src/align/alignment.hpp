// Alignment records: edit operations, coordinates, scores.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "score/score_params.hpp"
#include "sequence/sequence.hpp"

namespace fastz {

// Edit operations in target(A)/query(B) space.
//   Match: consume one base of A and one of B (match or substitution).
//   Insert: gap in A — consume one base of B only (the `I` matrix).
//   Delete: gap in B — consume one base of A only (the `D` matrix).
enum class AlignOp : std::uint8_t { Match = 0, Insert = 1, Delete = 2 };

char op_char(AlignOp op) noexcept;  // 'M', 'I', 'D'

// A gapped local alignment between A[a_begin, a_end) and B[b_begin, b_end).
struct Alignment {
  std::uint64_t a_begin = 0;
  std::uint64_t a_end = 0;
  std::uint64_t b_begin = 0;
  std::uint64_t b_end = 0;
  Score score = 0;
  std::vector<AlignOp> ops;  // in forward order (A/B coordinates ascending)

  // Alignment length in columns (number of ops), the quantity the paper's
  // length census (Table 2) bins.
  std::uint64_t length() const noexcept { return ops.size(); }

  // Longest of the two sequence spans (used for bin classification).
  std::uint64_t span() const noexcept;

  // Run-length encoded CIGAR string, e.g. "120M2D48M".
  std::string cigar() const;

  // Fraction of Match columns whose bases are equal; requires sequences.
  double identity(const Sequence& a, const Sequence& b) const;
};

// Recomputes the score of an alignment from its ops (validation helper):
// walks the ops, charging substitution scores and affine gap penalties.
// Throws std::invalid_argument if the ops walk outside the recorded
// coordinates or do not end exactly at (a_end, b_end).
Score rescore_alignment(const Alignment& aln, const Sequence& a, const Sequence& b,
                        const ScoreParams& params);

// Parses a run-length CIGAR string ("120M2D48M") back into ops — the
// inverse of Alignment::cigar(). Throws std::invalid_argument on malformed
// input (zero-length runs, unknown op letters, trailing digits).
std::vector<AlignOp> ops_from_cigar(std::string_view cigar);

}  // namespace fastz
