#include "align/extension.hpp"

#include <algorithm>

namespace fastz {

GappedExtension extend_seed(const Sequence& a, const Sequence& b, const SeedHit& hit,
                            std::size_t seed_span, const ScoreParams& params,
                            const OneSidedOptions& options) {
  GappedExtension ext;
  ext.anchor_a = hit.a_pos + seed_span / 2;
  ext.anchor_b = hit.b_pos + seed_span / 2;

  const auto a_codes = a.codes();
  const auto b_codes = b.codes();

  ext.left = ydrop_one_sided_align(reverse_view(a_codes, ext.anchor_a),
                                   reverse_view(b_codes, ext.anchor_b), params, options);
  ext.right = ydrop_one_sided_align(
      forward_view(a_codes, ext.anchor_a, a.size()),
      forward_view(b_codes, ext.anchor_b, b.size()), params, options);

  Alignment& aln = ext.alignment;
  aln.score = ext.left.best.score + ext.right.best.score;
  aln.a_begin = ext.anchor_a - ext.left.best.i;
  aln.b_begin = ext.anchor_b - ext.left.best.j;
  aln.a_end = ext.anchor_a + ext.right.best.i;
  aln.b_end = ext.anchor_b + ext.right.best.j;

  if (options.want_traceback) {
    // Left ops are in reversed-coordinate order (anchor outward); flipping
    // them yields the genome-forward path ending at the anchor.
    aln.ops.reserve(ext.left.ops.size() + ext.right.ops.size());
    aln.ops.assign(ext.left.ops.rbegin(), ext.left.ops.rend());
    aln.ops.insert(aln.ops.end(), ext.right.ops.begin(), ext.right.ops.end());
    ext.left.ops.clear();
    ext.right.ops.clear();
  }
  return ext;
}

}  // namespace fastz
