// Directional, non-owning views over encoded sequences.
//
// Seed extension runs twice per seed: rightward over suffixes and leftward
// over *reversed* prefixes (Section 3.1.2 of the paper: "LASTZ and FastZ
// perform left and right extensions of any seed site separately before
// combining"). A strided view lets the same DP kernel walk either direction
// without materializing reversed copies (which would cost O(chromosome) per
// seed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "sequence/dna.hpp"

namespace fastz {

class SeqView {
 public:
  SeqView() = default;
  SeqView(const BaseCode* first, std::ptrdiff_t stride, std::size_t length) noexcept
      : first_(first), stride_(stride), length_(length) {}

  BaseCode operator[](std::size_t k) const noexcept {
    return first_[static_cast<std::ptrdiff_t>(k) * stride_];
  }
  std::size_t size() const noexcept { return length_; }
  bool empty() const noexcept { return length_ == 0; }

  // First `n` elements (n <= size()).
  SeqView prefix(std::size_t n) const noexcept { return {first_, stride_, n}; }

 private:
  const BaseCode* first_ = nullptr;
  std::ptrdiff_t stride_ = 1;
  std::size_t length_ = 0;
};

// View of codes[begin, end) in ascending order.
inline SeqView forward_view(std::span<const BaseCode> codes, std::size_t begin,
                            std::size_t end) noexcept {
  return {codes.data() + begin, 1, end - begin};
}

// View of codes[0, end) in *descending* order: element 0 is codes[end - 1].
inline SeqView reverse_view(std::span<const BaseCode> codes, std::size_t end) noexcept {
  return {codes.data() + (end == 0 ? 0 : end - 1), -1, end};
}

}  // namespace fastz
