#include "align/output.hpp"

#include <iomanip>
#include <ostream>

namespace fastz {

AlignedRows render_rows(const Alignment& aln, const Sequence& a, const Sequence& b) {
  AlignedRows rows;
  rows.a.reserve(aln.ops.size());
  rows.b.reserve(aln.ops.size());
  std::uint64_t ai = aln.a_begin;
  std::uint64_t bi = aln.b_begin;
  for (AlignOp op : aln.ops) {
    switch (op) {
      case AlignOp::Match:
        rows.a.push_back(decode_base(a[ai++]));
        rows.b.push_back(decode_base(b[bi++]));
        break;
      case AlignOp::Insert:
        rows.a.push_back('-');
        rows.b.push_back(decode_base(b[bi++]));
        break;
      case AlignOp::Delete:
        rows.a.push_back(decode_base(a[ai++]));
        rows.b.push_back('-');
        break;
    }
  }
  return rows;
}

void write_maf(std::ostream& out, const std::vector<Alignment>& alignments,
               const Sequence& a, const Sequence& b) {
  out << "##maf version=1 scoring=hoxd70\n";
  for (const Alignment& aln : alignments) {
    const AlignedRows rows = render_rows(aln, a, b);
    out << "a score=" << aln.score << '\n';
    out << "s " << a.name() << ' ' << aln.a_begin << ' ' << (aln.a_end - aln.a_begin)
        << " + " << a.size() << ' ' << rows.a << '\n';
    out << "s " << b.name() << ' ' << aln.b_begin << ' ' << (aln.b_end - aln.b_begin)
        << " + " << b.size() << ' ' << rows.b << '\n';
    out << '\n';
  }
}

void write_tabular(std::ostream& out, const std::vector<Alignment>& alignments,
                   const Sequence& a, const Sequence& b) {
  for (const Alignment& aln : alignments) {
    out << a.name() << '\t' << b.name() << '\t' << aln.a_begin << '\t' << aln.a_end
        << '\t' << aln.b_begin << '\t' << aln.b_end << '\t' << aln.score << '\t'
        << std::fixed << std::setprecision(1) << aln.identity(a, b) * 100.0 << '\t'
        << aln.cigar() << '\n';
  }
}

}  // namespace fastz
