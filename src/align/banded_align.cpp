#include "align/banded_align.hpp"

#include <algorithm>

namespace fastz {

namespace {

constexpr Score add_score(Score base, Score delta) noexcept {
  return base <= kNegativeInfinity ? kNegativeInfinity : base + delta;
}

// One band row stored densely over [lo, lo + width).
struct BandRow {
  std::uint32_t lo = 0;
  std::vector<Score> s;
  std::vector<Score> gi;
  std::vector<Score> gd;

  Score s_at(std::uint32_t j) const noexcept {
    return (j >= lo && j - lo < s.size()) ? s[j - lo] : kNegativeInfinity;
  }
  Score gi_at(std::uint32_t j) const noexcept {
    return (j >= lo && j - lo < gi.size()) ? gi[j - lo] : kNegativeInfinity;
  }
  Score gd_at(std::uint32_t j) const noexcept {
    return (j >= lo && j - lo < gd.size()) ? gd[j - lo] : kNegativeInfinity;
  }
};

struct BandTraceRow {
  std::uint32_t lo = 0;
  std::vector<TraceCode> codes;
};

}  // namespace

OneSidedResult banded_one_sided_align(SeqView a, SeqView b, const ScoreParams& params,
                                      const BandedOptions& options) {
  params.validate();
  OneSidedResult result;
  result.best = BestCell{0, 0, 0};

  const auto n = static_cast<std::uint32_t>(b.size());
  const auto m = static_cast<std::uint32_t>(std::min<std::size_t>(a.size(), options.max_rows));
  result.truncated = m < a.size();
  const std::uint32_t w = options.half_width;

  std::vector<BandTraceRow> trace;
  const bool keep_trace = options.want_traceback;

  // Row 0: insertion run, bounded by the band (j <= half_width).
  BandRow prev;
  prev.lo = 0;
  prev.s.push_back(0);
  prev.gi.push_back(kNegativeInfinity);
  prev.gd.push_back(kNegativeInfinity);
  if (keep_trace) trace.push_back({0, {make_trace(kTraceSrcOrigin, false, false)}});
  for (std::uint32_t j = 1; j <= std::min(n, w); ++j) {
    const Score gi = params.gap_open + static_cast<Score>(j) * params.gap_extend;
    if (gi < -params.ydrop) break;
    prev.s.push_back(gi);
    prev.gi.push_back(gi);
    prev.gd.push_back(kNegativeInfinity);
    if (keep_trace) trace[0].codes.push_back(make_trace(kTraceSrcI, j == 1, false));
  }
  result.cells += prev.s.size();

  BandRow cur;
  BandTraceRow trow;
  for (std::uint32_t row = 1; row <= m; ++row) {
    // Band limits for this row.
    const std::uint32_t band_lo = row > w ? row - w : 0;
    const std::uint32_t band_hi = std::min<std::uint64_t>(n, std::uint64_t{row} + w);
    if (band_lo > n) break;

    cur.lo = band_lo;
    cur.s.clear();
    cur.gi.clear();
    cur.gd.clear();
    trow.lo = band_lo;
    trow.codes.clear();

    const Score cutoff = result.best.score - params.ydrop;
    bool any_viable = false;
    const BaseCode a_base = a[row - 1];

    for (std::uint32_t j = band_lo; j <= band_hi; ++j) {
      Score i_val, d_val, s_val;
      TraceCode code;
      if (j == 0) {
        d_val = params.gap_open + static_cast<Score>(row) * params.gap_extend;
        i_val = kNegativeInfinity;
        s_val = d_val;
        code = make_trace(kTraceSrcD, false, row == 1);
      } else {
        const bool have_left = j > band_lo && !cur.s.empty();
        const Score s_left = have_left ? cur.s.back() : kNegativeInfinity;
        const Score i_left = have_left ? cur.gi.back() : kNegativeInfinity;

        const Score i_ext = add_score(i_left, params.gap_extend);
        const Score i_open = add_score(s_left, params.gap_open + params.gap_extend);
        const bool i_opened = i_open >= i_ext;
        i_val = i_opened ? i_open : i_ext;

        const Score d_ext = add_score(prev.gd_at(j), params.gap_extend);
        const Score d_open = add_score(prev.s_at(j), params.gap_open + params.gap_extend);
        const bool d_opened = d_open >= d_ext;
        d_val = d_opened ? d_open : d_ext;

        const Score diag =
            add_score(prev.s_at(j - 1), params.substitution(a_base, b[j - 1]));
        s_val = diag;
        TraceCode s_src = kTraceSrcDiag;
        if (i_val > s_val) {
          s_val = i_val;
          s_src = kTraceSrcI;
        }
        if (d_val > s_val) {
          s_val = d_val;
          s_src = kTraceSrcD;
        }
        code = make_trace(s_src, i_opened, d_opened);
      }
      ++result.cells;

      const bool viable = s_val > kNegativeInfinity && s_val >= cutoff;
      if (viable) {
        cur.s.push_back(s_val);
        cur.gi.push_back(i_val);
        cur.gd.push_back(d_val);
        result.best.consider(s_val, row, j);
        any_viable = true;
      } else {
        cur.s.push_back(kNegativeInfinity);
        cur.gi.push_back(kNegativeInfinity);
        cur.gd.push_back(kNegativeInfinity);
      }
      if (keep_trace) trow.codes.push_back(code);
    }

    if (!any_viable) break;
    std::swap(prev, cur);
    if (keep_trace) trace.push_back(trow);
    result.rows_explored = row;
    result.max_row_width =
        std::max<std::uint32_t>(result.max_row_width, band_hi - band_lo + 1);
  }

  if (keep_trace) {
    result.ops = walk_traceback(result.best.i, result.best.j,
                                [&](std::uint32_t i, std::uint32_t j) -> TraceCode {
                                  const BandTraceRow& r = trace.at(i);
                                  if (j < r.lo || j - r.lo >= r.codes.size()) {
                                    throw std::runtime_error(
                                        "banded_one_sided_align: traceback escaped band");
                                  }
                                  return r.codes[j - r.lo];
                                });
  }
  return result;
}

}  // namespace fastz
