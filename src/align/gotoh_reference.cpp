#include "align/gotoh_reference.hpp"

#include <array>
#include <stdexcept>
#include <vector>

#include "align/row_precompute.hpp"
#include "align/traceback.hpp"
#include "util/simd.hpp"

namespace fastz {

ReferenceResult reference_extend(std::span<const BaseCode> a, std::span<const BaseCode> b,
                                 const ScoreParams& params) {
  return reference_extend(a, b, params, ReferenceOptions{});
}

ReferenceResult reference_extend(std::span<const BaseCode> a, std::span<const BaseCode> b,
                                 const ScoreParams& params,
                                 const ReferenceOptions& options) {
  params.validate();
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::size_t stride = n + 1;
  const Score open_extend = params.gap_open + params.gap_extend;

  std::vector<Score> s((m + 1) * stride, kNegativeInfinity);
  std::vector<Score> gi((m + 1) * stride, kNegativeInfinity);
  std::vector<Score> gd((m + 1) * stride, kNegativeInfinity);
  std::vector<TraceCode> trace((m + 1) * stride, make_trace(kTraceSrcOrigin, false, false));

  auto idx = [stride](std::size_t i, std::size_t j) { return i * stride + j; };

  ReferenceResult result;
  s[idx(0, 0)] = 0;

  // Borders: pure gap runs from the origin.
  for (std::size_t j = 1; j <= n; ++j) {
    gi[idx(0, j)] = params.gap_open + static_cast<Score>(j) * params.gap_extend;
    s[idx(0, j)] = gi[idx(0, j)];
    trace[idx(0, j)] = make_trace(kTraceSrcI, j == 1, false);
  }
  for (std::size_t i = 1; i <= m; ++i) {
    gd[idx(i, 0)] = params.gap_open + static_cast<Score>(i) * params.gap_extend;
    s[idx(i, 0)] = gd[idx(i, 0)];
    trace[idx(i, 0)] = make_trace(kTraceSrcD, false, i == 1);
  }

  // Optional vectorized precompute of the D candidates and diagonal sums —
  // per-row values that depend only on the completed previous row. Uses the
  // *plain* (non-saturating) row kernel: this reference adds without
  // saturation, and the SIMD pass must stay bit-identical to it. The serial
  // S/I chain, traceback packing, and best tracking remain scalar.
  detail::RowPrecomputeFn precompute =
      options.simd && n >= 8 ? detail::row_precompute_plain_fn(simd::active_isa())
                             : nullptr;
  std::array<std::vector<Score>, kAlphabetSize> profile;
  std::vector<Score> pre_d;
  std::vector<Score> pre_diag;
  std::vector<std::uint8_t> pre_opened;
  if (precompute != nullptr) {
    for (int c = 0; c < kAlphabetSize; ++c) profile[c].resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      for (int c = 0; c < kAlphabetSize; ++c) profile[c][k] = params.subst[c][b[k]];
    }
    pre_d.resize(n);
    pre_diag.resize(n);
    pre_opened.resize(n);
  }

  for (std::size_t i = 1; i <= m; ++i) {
    if (precompute != nullptr) {
      precompute(&s[idx(i - 1, 1)], &s[idx(i - 1, 0)], &gd[idx(i - 1, 1)],
                 profile[a[i - 1]].data(), open_extend, params.gap_extend, n,
                 pre_d.data(), pre_diag.data(), pre_opened.data());
    }
    for (std::size_t j = 1; j <= n; ++j) {
      // I: gap in A — arrive from the left.
      const Score i_ext = gi[idx(i, j - 1)] + params.gap_extend;
      const Score i_open = s[idx(i, j - 1)] + open_extend;
      const bool i_opened = i_open >= i_ext;
      const Score i_val = i_opened ? i_open : i_ext;

      // D: gap in B — arrive from above; diag: substitution candidate.
      Score d_val;
      Score diag;
      bool d_opened;
      if (precompute != nullptr) {
        d_val = pre_d[j - 1];
        diag = pre_diag[j - 1];
        d_opened = pre_opened[j - 1] != 0;
      } else {
        const Score d_ext = gd[idx(i - 1, j)] + params.gap_extend;
        const Score d_open = s[idx(i - 1, j)] + open_extend;
        d_opened = d_open >= d_ext;
        d_val = d_opened ? d_open : d_ext;
        diag = s[idx(i - 1, j - 1)] + params.substitution(a[i - 1], b[j - 1]);
      }

      // S: diagonal vs the two gap states. Preference order on ties is
      // diag > I > D, matching the oracle and the FastZ kernels.
      Score s_val = diag;
      TraceCode s_src = kTraceSrcDiag;
      if (i_val > s_val) {
        s_val = i_val;
        s_src = kTraceSrcI;
      }
      if (d_val > s_val) {
        s_val = d_val;
        s_src = kTraceSrcD;
      }

      s[idx(i, j)] = s_val;
      gi[idx(i, j)] = i_val;
      gd[idx(i, j)] = d_val;
      trace[idx(i, j)] = make_trace(s_src, i_opened, d_opened);
      ++result.cells;

      result.best.consider(s_val, static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j));
    }
  }

  result.ops = walk_traceback(result.best.i, result.best.j,
                              [&](std::uint32_t i, std::uint32_t j) {
                                return trace[idx(i, j)];
                              });
  return result;
}

}  // namespace fastz
