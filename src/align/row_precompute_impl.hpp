// Template body of the row-precompute primitives, instantiated once per
// ISA translation unit (row_precompute_sse2/avx2/neon.cpp) — never include
// from baseline code.
#pragma once

#include "align/row_precompute.hpp"
#include "util/simd_vec.hpp"

namespace fastz::detail {

// Saturate=true: the y-drop core's add_score (-inf absorbing).
// Saturate=false: the Gotoh reference's plain integer add.
template <class V, bool Saturate>
void row_precompute_vec(const Score* s_up, const Score* s_diag, const Score* gd_up,
                        const Score* prof, Score open_extend, Score extend_only,
                        std::size_t count, Score* d_val, Score* diag,
                        std::uint8_t* d_opened) {
  constexpr std::size_t W = V::kLanes;
  const V vneg = V::broadcast(kNegativeInfinity);
  const V voe = V::broadcast(open_extend);
  const V vext = V::broadcast(extend_only);

  const auto add = [&](V base, V delta) {
    if constexpr (Saturate) {
      return simd::add_score_vec(base, delta, vneg);
    } else {
      return base + delta;
    }
  };

  std::size_t k = 0;
  for (; k + W <= count; k += W) {
    const V up = V::load(s_up + k);
    const V dup = V::load(gd_up + k);
    const V d_ext = add(dup, vext);
    const V d_open = add(up, voe);
    const V opened = V::cmpge(d_open, d_ext);
    V::blend(opened, d_open, d_ext).store(d_val + k);
    add(V::load(s_diag + k), V::load(prof + k)).store(diag + k);

    alignas(64) Score opened_lanes[W];
    opened.store(opened_lanes);
    for (std::size_t q = 0; q < W; ++q) {
      d_opened[k + q] = static_cast<std::uint8_t>(opened_lanes[q] & 1);
    }
  }
  if (k < count) {
    auto tail = Saturate ? &row_precompute_scalar : &row_precompute_plain_scalar;
    tail(s_up + k, s_diag + k, gd_up + k, prof + k, open_extend, extend_only,
         count - k, d_val + k, diag + k, d_opened + k);
  }
}

}  // namespace fastz::detail
