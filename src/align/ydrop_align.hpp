// `ydrop_one_sided_align`: the gapped extension kernel of LASTZ.
//
// This is the function the paper profiles at >99.75% of sequential LASTZ's
// run time (Section 2.1) and the computation FastZ accelerates. It extends
// an alignment from an anchor in one direction using Gotoh's affine-gap
// recurrences, pruning the search space with the y-drop rule:
//
//   * a cell whose score falls more than `ydrop` below the best score seen
//     so far is pruned (treated as unreachable);
//   * pruned cells at the edges of a row shrink the active column interval;
//   * an empty interval terminates the search.
//
// Two pruning modes are provided:
//   * Sequential (LASTZ): the running best updates cell-by-cell within a
//     row — later cells of the same row can be pruned by an earlier cell's
//     score.
//   * Conservative (FastZ, Section 3.4): only scores from fully completed
//     previous rows participate in the cutoff, because a parallel kernel
//     cannot observe scores produced concurrently. This explores a superset
//     of the sequential search space, which is why FastZ reports identical
//     or occasionally longer alignments.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "align/alignment.hpp"
#include "align/gotoh_reference.hpp"
#include "align/seq_view.hpp"
#include "align/traceback.hpp"
#include "score/score_params.hpp"
#include "sequence/dna.hpp"

namespace fastz {

enum class PruneMode : std::uint8_t {
  kSequential,    // LASTZ: best updates within the current row
  kConservative,  // FastZ: cutoff uses completed rows only
};

struct OneSidedOptions {
  PruneMode prune = PruneMode::kSequential;
  bool want_traceback = true;
  // Safety caps on the explored extent (rows of A / columns of B). The
  // paper's largest load-balancing bin is 32768; the default leaves slack.
  // FastZ's executor trimming is expressed through these caps: the executor
  // re-runs the DP with max_rows/max_cols set to the inspector's optimal
  // cell.
  std::uint32_t max_rows = 49152;
  std::uint32_t max_cols = 49152;
  // Record the viable column interval of every explored row. The FastZ
  // inspector uses the intervals to derive the warp-strip execution
  // geometry (diagonal steps per 32-column strip) for the GPU cost model.
  bool record_row_bounds = false;
  // Trace from this cell instead of the best cell (executor use: the
  // inspector has already fixed the optimal cell; tracing from it keeps
  // inspector and executor consistent by construction). {i, j}.
  bool trace_from_fixed = false;
  std::uint32_t trace_i = 0;
  std::uint32_t trace_j = 0;
  // Hirschberg linear-space traceback (ydrop_linear_traceback). The executor
  // switches to it when the trimmed tile area (rows x cols of the traced
  // rectangle) reaches `hirschberg_area`; 0 disables the linear path
  // entirely. The default exceeds the largest bin-3 tile (32768^2), so
  // nothing changes until a workload actually has a long tail or the
  // threshold is lowered.
  std::uint64_t hirschberg_area = std::uint64_t{1} << 30;
  // Rows per materialized base block: segments at most this tall are
  // replayed once with codes and walked directly instead of split further.
  std::uint32_t hirschberg_block_rows = 64;
  // Fault injection for the differ's split canary: skews the walker's column
  // by this amount at every divide-and-conquer handoff. Must stay 0 in real
  // use; the `hirschberg-split-off-by-one` injected bug sets it to 1.
  std::int32_t hirschberg_split_skew = 0;
};

// Viable interval [lo, hi) of one explored row.
struct RowBounds {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
};

struct OneSidedResult {
  BestCell best;                   // optimal cell; score >= 0
  std::uint64_t cells = 0;         // DP cells computed (the search space)
  std::uint32_t rows_explored = 0; // search-space extent along A
  std::uint32_t max_row_width = 0; // widest active interval
  bool truncated = false;          // a safety cap was hit
  std::vector<AlignOp> ops;        // path (0,0) -> traced cell, if want_traceback
  std::vector<RowBounds> row_bounds;  // per explored row, if record_row_bounds
};

// Extends A[0..) x B[0..) from the shared anchor at (0, 0). Views may be
// forward (right extension) or reversed (left extension).
OneSidedResult ydrop_one_sided_align(SeqView a, SeqView b, const ScoreParams& params,
                                     const OneSidedOptions& options = {});

// Accounting from one `ydrop_linear_traceback` call. plan_cells matches the
// full-trace `cells` exactly; replay_cells is the recompute overhead of the
// divide-and-conquer (~ plan/2 * log2(rows/block_rows) + plan in the worst
// case). peak_trace_bytes is the high-water mark of materialized trace
// codes — bounded by (block_rows + 1) rows x the widest window, i.e. O(n+m)
// — and peak_checkpoint_bytes the high-water mark of retained score rows
// (one per live recursion level).
struct LinearTracebackStats {
  std::uint64_t plan_cells = 0;
  std::uint64_t replay_cells = 0;
  std::uint64_t trace_cells = 0;          // cells whose codes were materialized
  std::uint64_t peak_trace_bytes = 0;
  std::uint64_t peak_checkpoint_bytes = 0;
  std::uint32_t splits = 0;               // divide-and-conquer bisections
  std::uint32_t base_blocks = 0;          // segments traced directly
  std::uint32_t block_rows = 0;           // effective block height used
};

// Hirschberg-style linear-space variant of `ydrop_one_sided_align`:
// bit-identical best cell, cells, row bounds, and op list, but traceback
// state is bounded to O(n+m) via checkpoint bisection + forward replay
// instead of retaining every row's codes. Honors the same OneSidedOptions
// (both prune modes, caps, fixed trace cell); `hirschberg_block_rows`
// controls the base-block height and `hirschberg_split_skew` the injected
// split fault. `stats`, when non-null, receives the memory accounting.
OneSidedResult ydrop_linear_traceback(SeqView a, SeqView b, const ScoreParams& params,
                                      const OneSidedOptions& options = {},
                                      LinearTracebackStats* stats = nullptr);

inline OneSidedResult ydrop_linear_traceback(std::span<const BaseCode> a,
                                             std::span<const BaseCode> b,
                                             const ScoreParams& params,
                                             const OneSidedOptions& options = {},
                                             LinearTracebackStats* stats = nullptr) {
  return ydrop_linear_traceback(SeqView(a.data(), 1, a.size()),
                                SeqView(b.data(), 1, b.size()), params, options, stats);
}

// Convenience overload for contiguous spans (tests, small inputs).
inline OneSidedResult ydrop_one_sided_align(std::span<const BaseCode> a,
                                            std::span<const BaseCode> b,
                                            const ScoreParams& params,
                                            const OneSidedOptions& options = {}) {
  return ydrop_one_sided_align(SeqView(a.data(), 1, a.size()),
                               SeqView(b.data(), 1, b.size()), params, options);
}

}  // namespace fastz
