// Banded Smith-Waterman extension — the Darwin-WGA heuristic FastZ rejects.
//
// Darwin-WGA (and its predecessor Darwin) bound the gapped-extension search
// to a fixed-width band around the main diagonal (Sections 2.1 and 2.3 of
// the paper): insertions and deletions that would stray outside the band
// are simply not considered. That caps the work per extension at
// band_width x length cells, but "the optimal solution may not always be
// found within the band" — an alignment whose indel imbalance exceeds the
// half-width is truncated or mis-scored. FastZ deliberately keeps LASTZ's
// exact y-drop semantics instead; this module exists to quantify that
// trade-off (bench_banded_comparison) and as a second oracle for tests.
//
// Semantics: same prefix-anchored extension as `ydrop_one_sided_align`, but
// a cell (i, j) is computed only when |i - j| <= half_width. Y-drop pruning
// still applies inside the band.
#pragma once

#include <cstdint>

#include "align/ydrop_align.hpp"

namespace fastz {

struct BandedOptions {
  // Maximum |i - j| explored. Darwin-WGA's filtering stage uses a narrow
  // fixed band; 64 is a representative half-width.
  std::uint32_t half_width = 64;
  bool want_traceback = true;
  std::uint32_t max_rows = 49152;
};

// Banded extension of A[0..) x B[0..) anchored at (0, 0). Returns the same
// result shape as the exact engine so comparisons are direct.
OneSidedResult banded_one_sided_align(SeqView a, SeqView b, const ScoreParams& params,
                                      const BandedOptions& options = {});

inline OneSidedResult banded_one_sided_align(std::span<const BaseCode> a,
                                             std::span<const BaseCode> b,
                                             const ScoreParams& params,
                                             const BandedOptions& options = {}) {
  return banded_one_sided_align(SeqView(a.data(), 1, a.size()),
                                SeqView(b.data(), 1, b.size()), params, options);
}

}  // namespace fastz
