// Sequential LASTZ pipeline drivers — the paper's baseline and oracle.
//
// Stage structure follows Section 2 of the paper:
//   1. seeding        — spaced-seed exact matches (seed module)
//   2. filtering      — optional ungapped x-drop filter ("ungapped LASTZ");
//                       the high-sensitivity gapped variant skips it
//   3. gapped extend  — `ydrop_one_sided_align` on both sides of each seed
//
// Per-stage wall-clock and DP-cell counters feed the Section 2.1 profile
// experiment (">99% of gapped LASTZ's time is the DP component").
#pragma once

#include <cstdint>
#include <vector>

#include "align/extension.hpp"
#include "score/score_params.hpp"
#include "seed/seed_index.hpp"
#include "seed/spaced_seed.hpp"
#include "sequence/sequence.hpp"

namespace fastz {

struct PipelineOptions {
  // Cap on processed seed hits (the paper evaluates 1M seed sites per
  // benchmark); 0 = all hits.
  std::size_t max_seeds = 0;
  std::uint64_t sample_seed = 0x5eedull;
  // true => "ungapped LASTZ": seeds must pass the ungapped x-drop filter
  // before gapped extension (lower sensitivity, Figure 2).
  bool use_ungapped_filter = false;
  // With the filter on, additionally reduce the anchors to the best
  // colinear chain (LASTZ's --chain stage; see seed/chaining.hpp).
  bool chain_hsps = false;
  // Suppress duplicate alignments (many seeds inside one homology segment
  // converge to the same optimal alignment). Sequential LASTZ gets this
  // effect from its stop-at-prior-alignment rule; reporting-level dedup is
  // the order-independent equivalent that parallel implementations can use.
  bool deduplicate = true;
  // Section 2.1's sequential work reduction: skip seeds whose anchor lies
  // inside an already-reported alignment ("terminates an ongoing seed
  // extension upon reaching a previously-discovered alignment"). Inherently
  // order-dependent, so FastZ and the multicore partitioning cannot use it
  // (Section 3.4); exposed here to quantify the work FastZ forgoes
  // (bench_work_reduction).
  bool stop_at_prior_alignment = false;
  // LASTZ's default seed tolerance: allow one transition substitution at a
  // care position of the spaced seed (off here by default so seed counts
  // stay comparable with exact-match runs; see SeedIndex::find_hits).
  bool seed_transitions = false;
  // Host worker threads for consumers that parallelize over seeds (the
  // FastzStudy functional pass). 0 = auto (FASTZ_THREADS env, then
  // hardware_concurrency); 1 = the serial code path. Results are
  // bit-identical for every value — seeds are processed in any order but
  // assembled in seed-index order (see docs/PERFORMANCE.md).
  std::size_t threads = 0;
  OneSidedOptions one_sided;
  std::uint32_t index_step = 1;
};

struct PipelineCounters {
  std::uint64_t seed_hits = 0;         // hits enumerated (after sampling cap)
  std::uint64_t seeds_extended = 0;    // survived filtering
  std::uint64_t seeds_skipped = 0;     // suppressed by stop_at_prior_alignment
  std::uint64_t dp_cells = 0;          // gapped DP cells computed
  std::uint64_t traceback_columns = 0; // total ops across reported alignments
  double seed_time_s = 0.0;
  double filter_time_s = 0.0;
  double extend_time_s = 0.0;
  double total_time_s = 0.0;
};

struct PipelineResult {
  std::vector<Alignment> alignments;  // score >= params.gapped_threshold
  PipelineCounters counters;
};

// Gapped (high-sensitivity) LASTZ when `options.use_ungapped_filter` is
// false; ungapped-filtered LASTZ when true.
PipelineResult run_lastz(const Sequence& a, const Sequence& b, const ScoreParams& params,
                         const PipelineOptions& options = {});

// Seed enumeration shared by all implementations (sequential, multicore,
// FastZ): builds the index over `a` and returns the (possibly sampled)
// hit list.
std::vector<SeedHit> enumerate_seeds(const Sequence& a, const Sequence& b,
                                     const PipelineOptions& options);

// Removes alignments duplicating an earlier one's coordinates.
void deduplicate_alignments(std::vector<Alignment>& alignments);

}  // namespace fastz
