// Alignment output formats.
//
// LASTZ's ecosystem consumes MAF (multiple alignment format, the UCSC
// toolchain's interchange format) and simple tabular layouts; a drop-in
// replacement has to speak them. `write_maf` emits one MAF block per
// alignment with the aligned, gap-padded sequence rows; `write_tabular`
// emits a PAF-like one-line-per-alignment table.
#pragma once

#include <iosfwd>
#include <vector>

#include "align/alignment.hpp"
#include "sequence/sequence.hpp"

namespace fastz {

// Expands an alignment into its two gap-padded rows (A row uses '-' where
// ops insert into B and vice versa). Both strings have aln.length() chars.
struct AlignedRows {
  std::string a;
  std::string b;
};
AlignedRows render_rows(const Alignment& aln, const Sequence& a, const Sequence& b);

// MAF: a header (once) plus an `a score=...` block with two `s` lines per
// alignment.
void write_maf(std::ostream& out, const std::vector<Alignment>& alignments,
               const Sequence& a, const Sequence& b);

// Tab-separated: name_a name_b a_begin a_end b_begin b_end score identity% cigar
void write_tabular(std::ostream& out, const std::vector<Alignment>& alignments,
                   const Sequence& a, const Sequence& b);

}  // namespace fastz
