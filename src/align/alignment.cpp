#include "align/alignment.hpp"

#include <algorithm>
#include <stdexcept>

namespace fastz {

char op_char(AlignOp op) noexcept {
  switch (op) {
    case AlignOp::Match: return 'M';
    case AlignOp::Insert: return 'I';
    case AlignOp::Delete: return 'D';
  }
  return '?';
}

std::uint64_t Alignment::span() const noexcept {
  return std::max(a_end - a_begin, b_end - b_begin);
}

std::string Alignment::cigar() const {
  std::string out;
  std::size_t i = 0;
  while (i < ops.size()) {
    std::size_t j = i;
    while (j < ops.size() && ops[j] == ops[i]) ++j;
    out += std::to_string(j - i);
    out += op_char(ops[i]);
    i = j;
  }
  return out;
}

double Alignment::identity(const Sequence& a, const Sequence& b) const {
  std::uint64_t ai = a_begin;
  std::uint64_t bi = b_begin;
  std::uint64_t matches = 0;
  std::uint64_t columns = 0;
  for (AlignOp op : ops) {
    switch (op) {
      case AlignOp::Match:
        matches += (a[ai] == b[bi]) ? 1 : 0;
        ++columns;
        ++ai, ++bi;
        break;
      case AlignOp::Insert:
        ++bi;
        break;
      case AlignOp::Delete:
        ++ai;
        break;
    }
  }
  return columns ? static_cast<double>(matches) / static_cast<double>(columns) : 0.0;
}

Score rescore_alignment(const Alignment& aln, const Sequence& a, const Sequence& b,
                        const ScoreParams& params) {
  std::uint64_t ai = aln.a_begin;
  std::uint64_t bi = aln.b_begin;
  Score score = 0;
  AlignOp prev = AlignOp::Match;
  bool first = true;
  for (AlignOp op : aln.ops) {
    switch (op) {
      case AlignOp::Match:
        if (ai >= a.size() || bi >= b.size()) {
          throw std::invalid_argument("rescore_alignment: ops exceed sequence");
        }
        score += params.substitution(a[ai], b[bi]);
        ++ai, ++bi;
        break;
      case AlignOp::Insert:
        if (bi >= b.size()) throw std::invalid_argument("rescore_alignment: ops exceed B");
        score += params.gap_extend;
        if (first || prev != AlignOp::Insert) score += params.gap_open;
        ++bi;
        break;
      case AlignOp::Delete:
        if (ai >= a.size()) throw std::invalid_argument("rescore_alignment: ops exceed A");
        score += params.gap_extend;
        if (first || prev != AlignOp::Delete) score += params.gap_open;
        ++ai;
        break;
    }
    prev = op;
    first = false;
  }
  if (ai != aln.a_end || bi != aln.b_end) {
    throw std::invalid_argument("rescore_alignment: ops do not reach recorded end");
  }
  return score;
}

std::vector<AlignOp> ops_from_cigar(std::string_view cigar) {
  std::vector<AlignOp> ops;
  std::size_t i = 0;
  while (i < cigar.size()) {
    std::size_t run = 0;
    const std::size_t digits_start = i;
    while (i < cigar.size() && cigar[i] >= '0' && cigar[i] <= '9') {
      run = run * 10 + static_cast<std::size_t>(cigar[i] - '0');
      ++i;
    }
    if (i == digits_start || run == 0) {
      throw std::invalid_argument("ops_from_cigar: missing or zero run length");
    }
    if (i >= cigar.size()) {
      throw std::invalid_argument("ops_from_cigar: trailing digits without op");
    }
    AlignOp op;
    switch (cigar[i]) {
      case 'M': op = AlignOp::Match; break;
      case 'I': op = AlignOp::Insert; break;
      case 'D': op = AlignOp::Delete; break;
      default:
        throw std::invalid_argument(std::string("ops_from_cigar: unknown op '") +
                                    cigar[i] + "'");
    }
    ++i;
    ops.insert(ops.end(), run, op);
  }
  return ops;
}

}  // namespace fastz
