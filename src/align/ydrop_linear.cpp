// Hirschberg-style linear-space traceback for the y-drop DP.
//
// Classic Hirschberg meets a forward and a reverse score pass in the middle
// row — but y-drop pruning is direction-dependent, so a reverse pass explores
// a different region and the stitched path is NOT guaranteed bit-identical to
// the full-matrix traceback. This implementation uses checkpoint bisection
// with forward replay instead: the plan sweep runs the normal forward DP
// (scores only), and traceback re-derives codes by replaying row ranges from
// checkpointed row states. Both prune modes are exactly replayable — a row's
// outcome is a deterministic function of the previous row's scores and the
// best cell at row entry, which is precisely what a checkpoint stores — so
// every cell the walker visits carries the same code the full-trace path
// would have recorded, and the op list is bit-identical by construction.
//
// Memory: at most one base block of packed codes is live at a time
// (<= block_rows + 1 rows x the widest viable window = O(n + m)), plus one
// score-row checkpoint per live recursion level (O(log(rows)) of them).
// Compute: replaying from -> mid at every level costs about
// L/2 * log2(L/block_rows) + L extra row-sweeps over a span of L rows.

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "align/ydrop_align.hpp"
#include "align/ydrop_row_core.hpp"

namespace fastz {

namespace {

using detail::RowContext;
using detail::RowOutcome;
using detail::ScoreRow;
using detail::TraceRow;

// A resumable position in the row sweep: the completed row's scores plus the
// best cell at that point. advance_row from this state reproduces the
// original sweep exactly (either prune mode).
struct Checkpoint {
  std::uint32_t row = 0;
  ScoreRow state;
  BestCell best;
};

std::uint64_t row_state_bytes(const ScoreRow& row) {
  return std::uint64_t{row.width} * 3 * sizeof(Score);
}

// Deep copy trimmed to the viable width, so checkpoint memory tracks the
// actual window rather than scratch-buffer capacity.
void copy_row(const ScoreRow& src, ScoreRow& dst) {
  dst.lo = src.lo;
  dst.width = src.width;
  dst.first = src.first;
  dst.last = src.last;
  dst.s.assign(src.s.begin(), src.s.begin() + src.width);
  dst.gi.assign(src.gi.begin(), src.gi.begin() + src.width);
  dst.gd.assign(src.gd.begin(), src.gd.begin() + src.width);
}

struct Accounting {
  std::uint64_t replay_cells = 0;
  std::uint64_t trace_cells = 0;
  std::uint64_t trace_resident = 0;
  std::uint64_t peak_trace = 0;
  std::uint64_t ckpt_resident = 0;
  std::uint64_t peak_ckpt = 0;
  std::uint32_t splits = 0;
  std::uint32_t base_blocks = 0;

  void ckpt_add(std::uint64_t bytes) {
    ckpt_resident += bytes;
    peak_ckpt = std::max(peak_ckpt, ckpt_resident);
  }
  void ckpt_drop(std::uint64_t bytes) { ckpt_resident -= bytes; }
  void trace_add(std::uint64_t bytes) {
    trace_resident += bytes;
    peak_trace = std::max(peak_trace, trace_resident);
  }
  void trace_drop(std::uint64_t bytes) { trace_resident -= bytes; }
};

// walk_traceback's state machine, split so a walk can pause at a segment
// boundary and resume over the next segment's codes. Ops accumulate in
// walk (reverse) order; the driver reverses once at the end. Step counting
// and every error condition match walk_traceback exactly — the shared limit
// spans the whole walk, not one segment.
struct Walker {
  enum class State : std::uint8_t { S, I, D };

  std::uint32_t i = 0;
  std::uint32_t j = 0;
  State state = State::S;
  std::uint64_t steps = 0;
  std::uint64_t step_limit = 0;
  std::vector<AlignOp> rops;

  template <typename CodeAt>
  void step(CodeAt&& code_at) {
    if (++steps > step_limit) {
      throw std::runtime_error("walk_traceback: cycle in traceback codes");
    }
    const TraceCode code = code_at(i, j);
    switch (state) {
      case State::S:
        switch (trace_s_src(code)) {
          case kTraceSrcDiag:
            if (i == 0 || j == 0) throw std::runtime_error("walk_traceback: diag at border");
            rops.push_back(AlignOp::Match);
            --i, --j;
            break;
          case kTraceSrcI:
            state = State::I;
            break;
          case kTraceSrcD:
            state = State::D;
            break;
          default:
            throw std::runtime_error("walk_traceback: origin code before (0,0)");
        }
        break;
      case State::I:
        if (j == 0) throw std::runtime_error("walk_traceback: I at column 0");
        rops.push_back(AlignOp::Insert);
        state = trace_i_open(code) ? State::S : State::I;
        --j;
        break;
      case State::D:
        if (i == 0) throw std::runtime_error("walk_traceback: D at row 0");
        rops.push_back(AlignOp::Delete);
        state = trace_d_open(code) ? State::S : State::D;
        --i;
        break;
    }
  }

  // Walks until the row index reaches `floor`. Only codes with row index in
  // (floor, start] are read — row `floor` itself belongs to the next segment
  // down (or to the synthesized row 0).
  template <typename CodeAt>
  void run_to(std::uint32_t floor, CodeAt&& code_at) {
    while (i > floor) step(code_at);
  }

  // Finishes the walk along row 0 to the origin.
  template <typename CodeAt>
  void run_to_origin(CodeAt&& code_at) {
    while (!(i == 0 && j == 0 && state == State::S)) step(code_at);
  }
};

// Replays rows (from.row, target], leaving row `target`'s scores in `prev`
// and the best-after-target in `best`. When `rows` is non-null, packed codes
// for the replayed rows land in (*rows)[row - from.row - 1].
void replay(const RowContext& ctx, const Checkpoint& from, std::uint32_t target,
            ScoreRow& prev, ScoreRow& cur, BestCell& best, Accounting& acct,
            std::vector<TraceRow>* rows) {
  copy_row(from.state, prev);
  best = from.best;
  for (std::uint32_t row = from.row + 1; row <= target; ++row) {
    TraceRow* trow = rows != nullptr ? &(*rows)[row - from.row - 1] : nullptr;
    const RowOutcome o = detail::advance_row(ctx, row, prev, cur, best, trow);
    acct.replay_cells += o.cells;
    if (!o.any_viable) {
      // Impossible when target <= rows_explored of the plan sweep; kept as a
      // hard failure so a divergence surfaces instead of corrupting the walk.
      throw std::runtime_error("ydrop_linear_traceback: replay died before its target row");
    }
    std::swap(prev, cur);
  }
}

struct LinearTracer {
  const RowContext& ctx;
  std::uint32_t block_rows;
  std::int32_t split_skew;
  Walker walker;
  Accounting acct;
  ScoreRow prev;                // replay scratch
  ScoreRow cur;                 // replay scratch
  std::vector<TraceRow> block;  // base-block scratch, reused across leaves

  LinearTracer(const RowContext& ctx_, std::uint32_t block_rows_, std::int32_t skew)
      : ctx(ctx_), block_rows(block_rows_), split_skew(skew) {}

  // Walks the path from the walker's current row (== top) down to from.row.
  void trace_segment(const Checkpoint& from, std::uint32_t top) {
    const std::uint32_t span = top - from.row;
    if (span <= block_rows) {
      ++acct.base_blocks;
      if (block.size() < span) block.resize(span);
      BestCell best;
      replay(ctx, from, top, prev, cur, best, acct, &block);
      std::uint64_t bytes = 0;
      for (std::uint32_t k = 0; k < span; ++k) bytes += block[k].codes.size();
      acct.trace_cells += bytes;  // one byte per materialized cell
      acct.trace_add(bytes);
      walker.run_to(from.row, [&](std::uint32_t i, std::uint32_t j) -> TraceCode {
        const TraceRow& r = block[i - from.row - 1];
        if (j < r.lo || j - r.lo >= r.codes.size()) {
          throw std::runtime_error(
              "ydrop_linear_traceback: traceback escaped the explored region");
        }
        return r.codes[j - r.lo];
      });
      acct.trace_drop(bytes);
      return;
    }

    ++acct.splits;
    const std::uint32_t mid = from.row + span / 2;
    BestCell best;
    replay(ctx, from, mid, prev, cur, best, acct, nullptr);
    Checkpoint midcp;
    midcp.row = mid;
    midcp.best = best;
    copy_row(prev, midcp.state);
    const std::uint64_t midcp_bytes = row_state_bytes(midcp.state);
    acct.ckpt_add(midcp_bytes);

    trace_segment(midcp, top);
    // The walker is now on row `mid` — the handoff between the half
    // segments. The split canary perturbs the column here.
    if (split_skew != 0) {
      walker.j = static_cast<std::uint32_t>(static_cast<std::int64_t>(walker.j) + split_skew);
    }
    // Release the mid checkpoint before descending so live checkpoints stay
    // bounded by the recursion depth.
    acct.ckpt_drop(midcp_bytes);
    midcp.state = ScoreRow{};
    trace_segment(from, mid);
  }
};

}  // namespace

OneSidedResult ydrop_linear_traceback(SeqView a, SeqView b, const ScoreParams& params,
                                      const OneSidedOptions& options,
                                      LinearTracebackStats* stats) {
  params.validate();
  OneSidedResult result;
  result.best = BestCell{0, 0, 0};

  const auto n = static_cast<std::uint32_t>(std::min<std::size_t>(b.size(), options.max_cols));
  const auto m = static_cast<std::uint32_t>(std::min<std::size_t>(a.size(), options.max_rows));
  result.truncated = (n < b.size()) || (m < a.size());
  if (options.record_row_bounds) result.row_bounds.reserve(128);

  const RowContext ctx = detail::make_row_context(
      a, b, params, n, options.prune == PruneMode::kSequential);
  const std::uint32_t block_rows = std::max(1u, options.hirschberg_block_rows);

  LinearTracer tracer(ctx, block_rows, options.hirschberg_split_skew);

  // ---- Plan sweep: the normal forward DP, scores only. --------------------
  // Metrics (best, cells, bounds, widths) are identical to the full-trace
  // path because both run the same advance_row over the same states.
  ScoreRow prev;
  ScoreRow cur;
  const std::uint32_t w0 = detail::init_row0(ctx, prev, nullptr);
  result.max_row_width = w0;
  result.cells += w0;
  if (options.record_row_bounds) result.row_bounds.push_back({0, w0});

  Checkpoint ck0;
  ck0.row = 0;
  ck0.best = BestCell{0, 0, 0};
  copy_row(prev, ck0.state);
  tracer.acct.ckpt_add(row_state_bytes(ck0.state));

  for (std::uint32_t row = 1; row <= m; ++row) {
    const RowOutcome o = detail::advance_row(ctx, row, prev, cur, result.best, nullptr);
    result.cells += o.cells;
    if (!o.any_viable) break;
    std::swap(prev, cur);
    if (options.record_row_bounds) {
      result.row_bounds.push_back({o.first_viable, o.last_viable + 1});
    }
    result.max_row_width = std::max(result.max_row_width, o.last_viable + 1 - o.first_viable);
    result.rows_explored = row;
  }

  // ---- Traceback: checkpoint bisection + forward replay. ------------------
  if (options.want_traceback) {
    const std::uint32_t ti = options.trace_from_fixed ? options.trace_i : result.best.i;
    const std::uint32_t tj = options.trace_from_fixed ? options.trace_j : result.best.j;
    if (ti > result.rows_explored) {
      throw std::out_of_range("ydrop_linear_traceback: trace row beyond explored region");
    }
    tracer.walker.i = ti;
    tracer.walker.j = tj;
    tracer.walker.step_limit = 2 * (static_cast<std::uint64_t>(ti) + tj) + 1;
    tracer.walker.rops.reserve(static_cast<std::size_t>(ti) + tj);

    if (ti > 0) tracer.trace_segment(ck0, ti);
    // Row 0 codes are a pure function of the column; serve them without
    // materialization.
    tracer.walker.run_to_origin([&](std::uint32_t, std::uint32_t j) -> TraceCode {
      if (j >= w0) {
        throw std::runtime_error(
            "ydrop_linear_traceback: traceback escaped the explored region");
      }
      return detail::row0_code(j);
    });
    result.ops.assign(tracer.walker.rops.rbegin(), tracer.walker.rops.rend());
  }

  tracer.acct.ckpt_drop(row_state_bytes(ck0.state));

  if (stats != nullptr) {
    stats->plan_cells = result.cells;
    stats->replay_cells = tracer.acct.replay_cells;
    stats->trace_cells = tracer.acct.trace_cells;
    stats->peak_trace_bytes = tracer.acct.peak_trace;
    stats->peak_checkpoint_bytes = tracer.acct.peak_ckpt;
    stats->splits = tracer.acct.splits;
    stats->base_blocks = tracer.acct.base_blocks;
    stats->block_rows = block_rows;
  }
  return result;
}

}  // namespace fastz
