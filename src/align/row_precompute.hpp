// Vectorized "phase A" of a DP row sweep.
//
// The y-drop row body (ydrop_row_core.hpp) and the full-matrix Gotoh
// reference share the same split: within one row, the D state and the
// diagonal candidate depend only on the PREVIOUS row, so they vectorize
// cleanly, while the S/I chain carries a serial within-row dependency (the
// insertion chain reads the cell just written) and stays scalar. This
// header is the vector half: given the previous row's S/D arrays and a
// substitution profile, it precomputes, for a contiguous column span,
//
//   d_ext    = add(gd_up[k],  gap_extend)
//   d_open   = add(s_up[k],   gap_open + gap_extend)
//   d_opened = d_open >= d_ext          (the tie rule the trace codes pin)
//   d_val    = d_opened ? d_open : d_ext
//   diag     = add(s_diag[k], prof[k])
//
// in two flavors of `add`: the y-drop core's saturating add_score (where
// kNegativeInfinity absorbs) and the Gotoh reference's plain integer add.
// Both are bit-identical to their scalar ancestors by construction — the
// scalar phase B consumes these values verbatim.
//
// Internal header of src/align (fastz::detail).
#pragma once

#include <cstddef>
#include <cstdint>

#include "score/score_params.hpp"
#include "util/simd.hpp"

namespace fastz::detail {

// d_val / diag / d_opened are written for k in [0, count). All input and
// output spans may be unaligned; they must not overlap.
using RowPrecomputeFn = void (*)(const Score* s_up, const Score* s_diag,
                                 const Score* gd_up, const Score* prof,
                                 Score open_extend, Score extend_only,
                                 std::size_t count, Score* d_val, Score* diag,
                                 std::uint8_t* d_opened);

// Scalar references (also the tail loop of every vector variant).
void row_precompute_scalar(const Score* s_up, const Score* s_diag, const Score* gd_up,
                           const Score* prof, Score open_extend, Score extend_only,
                           std::size_t count, Score* d_val, Score* diag,
                           std::uint8_t* d_opened);
void row_precompute_plain_scalar(const Score* s_up, const Score* s_diag,
                                 const Score* gd_up, const Score* prof,
                                 Score open_extend, Score extend_only, std::size_t count,
                                 Score* d_val, Score* diag, std::uint8_t* d_opened);

// Saturating-add variant for `isa` (y-drop semantics), or null when the ISA
// is scalar / not compiled into this binary — callers fall back to their
// original scalar row body.
RowPrecomputeFn row_precompute_fn(simd::Isa isa) noexcept;

// Plain-add variant (Gotoh reference semantics); same fallback contract.
RowPrecomputeFn row_precompute_plain_fn(simd::Isa isa) noexcept;

}  // namespace fastz::detail
