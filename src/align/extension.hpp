// Two-sided gapped seed extension.
//
// LASTZ extends each seed in two independent one-sided DP problems — left
// over the reversed prefixes and right over the suffixes, both anchored at
// the seed midpoint — and combines them into the final alignment
// (Section 3.1.2 of the paper). The combined score decides whether the
// alignment clears the reporting threshold, which is why even a very short
// left (or right) side cannot be discarded a priori.
#pragma once

#include <cstdint>

#include "align/alignment.hpp"
#include "align/ydrop_align.hpp"
#include "seed/seed_index.hpp"
#include "sequence/sequence.hpp"

namespace fastz {

struct GappedExtension {
  Alignment alignment;    // global A/B coordinates; ops populated when traced
  OneSidedResult left;    // per-side DP results (ops cleared after combining)
  OneSidedResult right;
  std::uint64_t anchor_a = 0;
  std::uint64_t anchor_b = 0;

  // Extent of the optimal alignment along each sequence (left + right).
  std::uint64_t a_extent() const noexcept {
    return std::uint64_t{left.best.i} + right.best.i;
  }
  std::uint64_t b_extent() const noexcept {
    return std::uint64_t{left.best.j} + right.best.j;
  }
  // The square box side that contains the optimal alignment — the quantity
  // the paper bins by (Section 3.3: "an optimal alignment found at DP
  // matrix cell (i, j) is placed in the smallest bin which contains it").
  std::uint64_t box() const noexcept { return std::max(a_extent(), b_extent()); }
  std::uint64_t total_cells() const noexcept { return left.cells + right.cells; }
};

// Extends `hit` on both sides from the seed midpoint anchor. When
// `options.want_traceback` is set, `alignment.ops` holds the combined path.
GappedExtension extend_seed(const Sequence& a, const Sequence& b, const SeedHit& hit,
                            std::size_t seed_span, const ScoreParams& params,
                            const OneSidedOptions& options = {});

}  // namespace fastz
