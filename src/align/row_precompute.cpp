#include "align/row_precompute.hpp"

namespace fastz::detail {

namespace {

constexpr Score add_sat(Score base, Score delta) noexcept {
  return base <= kNegativeInfinity ? kNegativeInfinity : base + delta;
}

}  // namespace

void row_precompute_scalar(const Score* s_up, const Score* s_diag, const Score* gd_up,
                           const Score* prof, Score open_extend, Score extend_only,
                           std::size_t count, Score* d_val, Score* diag,
                           std::uint8_t* d_opened) {
  for (std::size_t k = 0; k < count; ++k) {
    const Score d_ext = add_sat(gd_up[k], extend_only);
    const Score d_open = add_sat(s_up[k], open_extend);
    const bool opened = d_open >= d_ext;
    d_opened[k] = opened ? 1 : 0;
    d_val[k] = opened ? d_open : d_ext;
    diag[k] = add_sat(s_diag[k], prof[k]);
  }
}

void row_precompute_plain_scalar(const Score* s_up, const Score* s_diag,
                                 const Score* gd_up, const Score* prof,
                                 Score open_extend, Score extend_only, std::size_t count,
                                 Score* d_val, Score* diag, std::uint8_t* d_opened) {
  for (std::size_t k = 0; k < count; ++k) {
    const Score d_ext = gd_up[k] + extend_only;
    const Score d_open = s_up[k] + open_extend;
    const bool opened = d_open >= d_ext;
    d_opened[k] = opened ? 1 : 0;
    d_val[k] = opened ? d_open : d_ext;
    diag[k] = s_diag[k] + prof[k];
  }
}

#ifdef FASTZ_SIMD_HAS_SSE2
void row_precompute_sse2(const Score*, const Score*, const Score*, const Score*, Score,
                         Score, std::size_t, Score*, Score*, std::uint8_t*);
void row_precompute_plain_sse2(const Score*, const Score*, const Score*, const Score*,
                               Score, Score, std::size_t, Score*, Score*, std::uint8_t*);
#endif
#ifdef FASTZ_SIMD_HAS_AVX2
void row_precompute_avx2(const Score*, const Score*, const Score*, const Score*, Score,
                         Score, std::size_t, Score*, Score*, std::uint8_t*);
void row_precompute_plain_avx2(const Score*, const Score*, const Score*, const Score*,
                               Score, Score, std::size_t, Score*, Score*, std::uint8_t*);
#endif
#ifdef FASTZ_SIMD_HAS_NEON
void row_precompute_neon(const Score*, const Score*, const Score*, const Score*, Score,
                         Score, std::size_t, Score*, Score*, std::uint8_t*);
void row_precompute_plain_neon(const Score*, const Score*, const Score*, const Score*,
                               Score, Score, std::size_t, Score*, Score*, std::uint8_t*);
#endif

RowPrecomputeFn row_precompute_fn(simd::Isa isa) noexcept {
  switch (isa) {
#ifdef FASTZ_SIMD_HAS_SSE2
    case simd::Isa::kSse2:
      return &row_precompute_sse2;
#endif
#ifdef FASTZ_SIMD_HAS_AVX2
    case simd::Isa::kAvx2:
      return &row_precompute_avx2;
#endif
#ifdef FASTZ_SIMD_HAS_NEON
    case simd::Isa::kNeon:
      return &row_precompute_neon;
#endif
    default:
      return nullptr;
  }
}

RowPrecomputeFn row_precompute_plain_fn(simd::Isa isa) noexcept {
  switch (isa) {
#ifdef FASTZ_SIMD_HAS_SSE2
    case simd::Isa::kSse2:
      return &row_precompute_plain_sse2;
#endif
#ifdef FASTZ_SIMD_HAS_AVX2
    case simd::Isa::kAvx2:
      return &row_precompute_plain_avx2;
#endif
#ifdef FASTZ_SIMD_HAS_NEON
    case simd::Isa::kNeon:
      return &row_precompute_plain_neon;
#endif
    default:
      return nullptr;
  }
}

}  // namespace fastz::detail
