#include "align/strand_search.hpp"

#include <algorithm>

namespace fastz {

std::size_t StrandSearchResult::forward_count() const {
  return static_cast<std::size_t>(
      std::count_if(alignments.begin(), alignments.end(),
                    [](const StrandAlignment& s) { return !s.reverse_strand; }));
}

std::size_t StrandSearchResult::reverse_count() const {
  return alignments.size() - forward_count();
}

StrandSearchResult run_lastz_both_strands(const Sequence& a, const Sequence& b,
                                          const ScoreParams& params,
                                          const PipelineOptions& options) {
  StrandSearchResult result;
  result.rc_query = b.reverse_complement(b.name() + "_rc");

  PipelineResult forward = run_lastz(a, b, params, options);
  result.forward_counters = forward.counters;
  for (Alignment& aln : forward.alignments) {
    StrandAlignment s;
    s.b_forward_begin = aln.b_begin;
    s.b_forward_end = aln.b_end;
    s.alignment = std::move(aln);
    result.alignments.push_back(std::move(s));
  }

  PipelineResult reverse = run_lastz(a, result.rc_query, params, options);
  result.reverse_counters = reverse.counters;
  for (Alignment& aln : reverse.alignments) {
    StrandAlignment s;
    s.reverse_strand = true;
    const auto [fwd_begin, fwd_end] = map_to_forward(aln.b_begin, aln.b_end, b.size());
    s.b_forward_begin = fwd_begin;
    s.b_forward_end = fwd_end;
    s.alignment = std::move(aln);
    result.alignments.push_back(std::move(s));
  }
  return result;
}

}  // namespace fastz
