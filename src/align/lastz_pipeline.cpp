#include "align/lastz_pipeline.hpp"

#include <algorithm>
#include <unordered_set>

#include "align/coverage_map.hpp"
#include "seed/chaining.hpp"
#include "seed/ungapped_filter.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/timer.hpp"

namespace fastz {

std::vector<SeedHit> enumerate_seeds(const Sequence& a, const Sequence& b,
                                     const PipelineOptions& options) {
  const SpacedSeed seed = SpacedSeed::lastz_default();
  SeedIndex index(a, seed, options.index_step);
  return index.find_hits(b, options.max_seeds, options.sample_seed,
                         options.seed_transitions);
}

void deduplicate_alignments(std::vector<Alignment>& alignments) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(alignments.size() * 2);
  auto key = [](const Alignment& aln) {
    // Coordinates are < 2^32; fold begin/end into one 64-bit key with a mix
    // that keeps distinct rectangles distinct in practice.
    std::uint64_t h = aln.a_begin * 0x9E3779B97F4A7C15ull;
    h ^= aln.b_begin + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    h ^= aln.a_end + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    h ^= aln.b_end + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return h;
  };
  std::erase_if(alignments, [&](const Alignment& aln) { return !seen.insert(key(aln)).second; });
}

PipelineResult run_lastz(const Sequence& a, const Sequence& b, const ScoreParams& params,
                         const PipelineOptions& options) {
  params.validate();
  telemetry::TraceSpan pipeline_span("lastz.pipeline", "lastz");
  PipelineResult result;
  Timer total;

  // Stage 1: seeding.
  Timer stage;
  const SpacedSeed seed = SpacedSeed::lastz_default();
  std::vector<SeedHit> hits;
  {
    telemetry::TraceSpan span("lastz.seeding", "lastz");
    hits = enumerate_seeds(a, b, options);
  }
  result.counters.seed_hits = hits.size();
  result.counters.seed_time_s = stage.elapsed_s();

  // Stage 2: optional ungapped filtering (and optional chaining on top).
  stage.reset();
  if (options.use_ungapped_filter) {
    telemetry::TraceSpan span("lastz.filtering", "lastz");
    std::vector<UngappedHsp> kept = filter_seeds(a, b, hits, seed.span(), params);
    if (options.chain_hsps) kept = best_chain(std::move(kept));
    hits.clear();
    hits.reserve(kept.size());
    for (const auto& hsp : kept) hits.push_back(hsp.seed);
  }
  result.counters.filter_time_s = stage.elapsed_s();
  result.counters.seeds_extended = hits.size();

  // Stage 3: gapped extension (the >99% component).
  stage.reset();
  {
    telemetry::TraceSpan extend_span("lastz.gapped_extension", "lastz");
    CoverageMap covered;
    for (const SeedHit& hit : hits) {
      if (options.stop_at_prior_alignment) {
        const std::uint64_t anchor_a = hit.a_pos + seed.span() / 2;
        const std::uint64_t anchor_b = hit.b_pos + seed.span() / 2;
        if (covered.covers(anchor_a, anchor_b)) {
          ++result.counters.seeds_skipped;
          continue;
        }
      }
      GappedExtension ext = extend_seed(a, b, hit, seed.span(), params, options.one_sided);
      result.counters.dp_cells += ext.total_cells();
      if (ext.alignment.score >= params.gapped_threshold) {
        result.counters.traceback_columns += ext.alignment.ops.size();
        if (options.stop_at_prior_alignment) covered.add(ext.alignment);
        result.alignments.push_back(std::move(ext.alignment));
      }
    }
  }
  result.counters.extend_time_s = stage.elapsed_s();

  if (options.deduplicate) deduplicate_alignments(result.alignments);
  result.counters.total_time_s = total.elapsed_s();

  if (telemetry::enabled()) {
    auto& reg = telemetry::MetricsRegistry::global();
    reg.counter("lastz.seed_hits").add(result.counters.seed_hits);
    reg.counter("lastz.seeds_extended").add(result.counters.seeds_extended);
    reg.counter("lastz.seeds_skipped").add(result.counters.seeds_skipped);
    reg.counter("lastz.dp_cells").add(result.counters.dp_cells);
    reg.counter("lastz.traceback_columns").add(result.counters.traceback_columns);
    reg.counter("lastz.alignments").add(result.alignments.size());
  }
  return result;
}

}  // namespace fastz
