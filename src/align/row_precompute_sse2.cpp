// 128-bit x86 row-precompute instantiations (x86-64 baseline, no flags).
#if defined(__SSE2__)
#include "align/row_precompute_impl.hpp"

namespace fastz::detail {

void row_precompute_sse2(const Score* s_up, const Score* s_diag, const Score* gd_up,
                         const Score* prof, Score open_extend, Score extend_only,
                         std::size_t count, Score* d_val, Score* diag,
                         std::uint8_t* d_opened) {
  row_precompute_vec<simd::VecSse2, true>(s_up, s_diag, gd_up, prof, open_extend,
                                          extend_only, count, d_val, diag, d_opened);
}

void row_precompute_plain_sse2(const Score* s_up, const Score* s_diag, const Score* gd_up,
                               const Score* prof, Score open_extend, Score extend_only,
                               std::size_t count, Score* d_val, Score* diag,
                               std::uint8_t* d_opened) {
  row_precompute_vec<simd::VecSse2, false>(s_up, s_diag, gd_up, prof, open_extend,
                                           extend_only, count, d_val, diag, d_opened);
}

}  // namespace fastz::detail
#endif
