// Coverage bookkeeping for LASTZ's sequential work reduction.
//
// Section 2.1 of the paper: "LASTZ terminates an ongoing seed extension
// upon reaching a previously-discovered alignment because it is not
// profitable to combine the prior and current alignments". The practical
// effect is that seeds landing inside an already-reported alignment's
// footprint do not redo its DP. This optimization fundamentally relies on
// sequential order — FastZ (like Darwin-WGA) forgoes it (Section 3.4) —
// which is why a parallel implementation explores a superset of cells.
//
// CoverageMap records reported alignment rectangles and answers "is this
// anchor inside a prior alignment" queries. Rectangles are kept sorted by
// A-begin; queries binary-search the candidates whose A-interval can cover
// the point.
#pragma once

#include <cstdint>
#include <vector>

#include "align/alignment.hpp"

namespace fastz {

class CoverageMap {
 public:
  void add(const Alignment& aln);

  // True if (a_pos, b_pos) lies inside a recorded rectangle.
  bool covers(std::uint64_t a_pos, std::uint64_t b_pos) const;

  std::size_t size() const noexcept { return rects_.size(); }

 private:
  struct Rect {
    std::uint64_t a_begin, a_end, b_begin, b_end;
  };

  // Sorted by a_begin; `max_a_end_` is a running prefix maximum of a_end
  // enabling early exit in queries.
  std::vector<Rect> rects_;
  std::vector<std::uint64_t> prefix_max_a_end_;
};

}  // namespace fastz
