// 128-bit ARM row-precompute instantiations (architectural on AArch64).
#if defined(__ARM_NEON)
#include "align/row_precompute_impl.hpp"

namespace fastz::detail {

void row_precompute_neon(const Score* s_up, const Score* s_diag, const Score* gd_up,
                         const Score* prof, Score open_extend, Score extend_only,
                         std::size_t count, Score* d_val, Score* diag,
                         std::uint8_t* d_opened) {
  row_precompute_vec<simd::VecNeon, true>(s_up, s_diag, gd_up, prof, open_extend,
                                          extend_only, count, d_val, diag, d_opened);
}

void row_precompute_plain_neon(const Score* s_up, const Score* s_diag, const Score* gd_up,
                               const Score* prof, Score open_extend, Score extend_only,
                               std::size_t count, Score* d_val, Score* diag,
                               std::uint8_t* d_opened) {
  row_precompute_vec<simd::VecNeon, false>(s_up, s_diag, gd_up, prof, open_extend,
                                           extend_only, count, d_val, diag, d_opened);
}

}  // namespace fastz::detail
#endif
