#include "align/coverage_map.hpp"

#include <algorithm>

namespace fastz {

void CoverageMap::add(const Alignment& aln) {
  Rect rect{aln.a_begin, aln.a_end, aln.b_begin, aln.b_end};
  const auto it = std::lower_bound(
      rects_.begin(), rects_.end(), rect,
      [](const Rect& x, const Rect& y) { return x.a_begin < y.a_begin; });
  const auto index = static_cast<std::size_t>(it - rects_.begin());
  rects_.insert(it, rect);

  // Rebuild the prefix maxima from the insertion point.
  prefix_max_a_end_.resize(rects_.size());
  for (std::size_t k = (index == 0 ? 0 : index); k < rects_.size(); ++k) {
    const std::uint64_t prev = k == 0 ? 0 : prefix_max_a_end_[k - 1];
    prefix_max_a_end_[k] = std::max(prev, rects_[k].a_end);
  }
}

bool CoverageMap::covers(std::uint64_t a_pos, std::uint64_t b_pos) const {
  if (rects_.empty()) return false;
  // Candidates: rects with a_begin <= a_pos. Walk backwards; stop once the
  // prefix maximum of a_end can no longer reach a_pos.
  auto it = std::upper_bound(
      rects_.begin(), rects_.end(), a_pos,
      [](std::uint64_t pos, const Rect& r) { return pos < r.a_begin; });
  while (it != rects_.begin()) {
    const auto index = static_cast<std::size_t>(it - rects_.begin()) - 1;
    if (prefix_max_a_end_[index] <= a_pos) break;  // nothing earlier reaches
    const Rect& r = rects_[index];
    if (r.a_end > a_pos && r.b_begin <= b_pos && b_pos < r.b_end) return true;
    --it;
  }
  return false;
}

}  // namespace fastz
