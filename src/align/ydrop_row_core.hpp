// Shared row-sweep core of the y-drop DP.
//
// `ydrop_one_sided_align` (full-trace path) and `ydrop_linear_traceback`
// (Hirschberg checkpoint-bisection path, ydrop_linear.cpp) must advance
// rows with EXACTLY the same arithmetic, pruning, and packed traceback
// codes: the linear path replays rows from checkpoints, and its output is
// required to be bit-identical to the full path at every split point. One
// shared row body makes that equivalence structural instead of aspirational.
//
// Internal header — everything here is an implementation detail of the two
// drivers in src/align; nothing outside `fastz::detail` should include it.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "align/gotoh_reference.hpp"
#include "align/row_precompute.hpp"
#include "align/seq_view.hpp"
#include "align/traceback.hpp"
#include "score/score_params.hpp"
#include "util/aligned.hpp"
#include "util/simd.hpp"

namespace fastz::detail {

// 64-byte-aligned row storage: the vectorized phase-A precompute loads the
// previous row's S/D planes with full vectors.
using AlignedScores = std::vector<Score, util::AlignedAllocator<Score, 64>>;

// One DP row: scores for columns [lo, lo + width). Pruned cells store
// kNegativeInfinity so downstream reads see them as unreachable — LASTZ's
// hard-prune semantics. Buffers are reused across rows (the inner loop must
// not allocate).
struct ScoreRow {
  std::uint32_t lo = 0;
  std::uint32_t width = 0;
  std::uint32_t first = 0;  // first viable column (absolute)
  std::uint32_t last = 0;   // last viable column (absolute)
  AlignedScores s;
  AlignedScores gi;
  AlignedScores gd;

  void ensure_capacity(std::size_t n) {
    if (s.size() < n) {
      s.resize(n);
      gi.resize(n);
      gd.resize(n);
    }
  }
};

struct TraceRow {
  std::uint32_t lo = 0;
  std::vector<TraceCode> codes;
};

// Saturating add that keeps kNegativeInfinity absorbing.
constexpr Score add_score(Score base, Score delta) noexcept {
  return base <= kNegativeInfinity ? kNegativeInfinity : base + delta;
}

// Code of row-0 cell (0, j): the origin at j == 0, else the pure insertion
// chain (opened at j == 1). Must match what init_row0 records — the linear
// path synthesizes row-0 codes from this instead of materializing them.
constexpr TraceCode row0_code(std::uint32_t j) noexcept {
  return j == 0 ? make_trace(kTraceSrcOrigin, false, false)
                : make_trace(kTraceSrcI, j == 1, false);
}

// Engage the vectorized phase-A precompute only when the core span is at
// least this wide; narrower rows are pure overhead for a vector setup.
inline constexpr std::uint32_t kRowSimdMinSpan = 8;

// Mutable SIMD scratch owned by the row sweep. The fn pointer is resolved
// once per sweep from the active ISA; the score profile
// (profile[c][j] == subst[c][b[j]]) is built lazily up to a column
// watermark with amortized doubling so short extensions never pay for the
// full sequence. All buffers are reused across rows.
struct RowSimdState {
  RowPrecomputeFn fn = nullptr;
  std::array<AlignedScores, kAlphabetSize> profile;
  std::uint32_t built = 0;  // profile covers columns [0, built)
  AlignedScores d_val;
  AlignedScores diag;
  std::vector<std::uint8_t> d_opened;
};

// Immutable per-call state of a row sweep.
struct RowContext {
  SeqView a;
  SeqView b;
  const ScoreParams* params = nullptr;
  std::uint32_t n = 0;             // usable columns (after the max_cols clamp)
  std::uint32_t max_right_run = 0; // insertion-chain reach past the prior row
  Score open_extend = 0;
  Score extend_only = 0;
  bool sequential = false;         // PruneMode::kSequential
  mutable RowSimdState simd;       // scratch, not semantic state
};

inline RowContext make_row_context(SeqView a, SeqView b, const ScoreParams& params,
                                   std::uint32_t n, bool sequential) {
  RowContext ctx;
  ctx.a = a;
  ctx.b = b;
  ctx.params = &params;
  ctx.n = n;
  ctx.sequential = sequential;
  // How far a viable insertion chain can run past the previous row's end:
  // each step costs |gap_extend|, and the chain dies once it is ydrop below
  // the best score.
  const Score extend_cost = -params.gap_extend;
  ctx.max_right_run =
      extend_cost > 0
          ? static_cast<std::uint32_t>((params.ydrop - params.gap_open) / extend_cost) + 2
          : n + 1;
  ctx.open_extend = params.gap_open + params.gap_extend;
  ctx.extend_only = params.gap_extend;
  ctx.simd.fn = row_precompute_fn(simd::active_isa());
  return ctx;
}

// Row 0: a pure insertion run from the origin. Fills `prev` (and the codes
// of `trow` when non-null) and returns the row width.
inline std::uint32_t init_row0(const RowContext& ctx, ScoreRow& prev, TraceRow* trow) {
  const ScoreParams& params = *ctx.params;
  prev.ensure_capacity(std::size_t{std::min(ctx.n, ctx.max_right_run)} + 2);
  prev.lo = 0;
  prev.s[0] = 0;
  prev.gi[0] = kNegativeInfinity;
  prev.gd[0] = kNegativeInfinity;
  std::uint32_t w = 1;
  if (trow != nullptr) {
    trow->lo = 0;
    trow->codes.assign(1, row0_code(0));
  }
  for (std::uint32_t j = 1; j <= ctx.n; ++j) {
    const Score gi = params.gap_open + static_cast<Score>(j) * params.gap_extend;
    if (gi < -params.ydrop) break;  // best is still 0 at (0,0)
    prev.s[w] = gi;
    prev.gi[w] = gi;
    prev.gd[w] = kNegativeInfinity;
    ++w;
    if (trow != nullptr) trow->codes.push_back(row0_code(j));
  }
  prev.width = w;
  prev.first = 0;
  prev.last = w - 1;
  return w;
}

struct RowOutcome {
  bool any_viable = false;
  std::uint32_t first_viable = 0;
  std::uint32_t last_viable = 0;
  std::uint64_t cells = 0;  // DP cells computed by this row
};

// Advances one DP row: computes row `row` into `cur` from the completed row
// `prev`, updating `best` exactly as the prune mode dictates (sequential:
// cell-by-cell with a moving cutoff; conservative: merged after the row
// from a cutoff frozen at the best of completed rows). When `trow` is
// non-null the row's packed traceback codes are recorded (window [lo,
// lo + codes.size())). The caller swaps prev/cur on a viable outcome and
// terminates the sweep otherwise — identical control flow in every driver.
inline RowOutcome advance_row(const RowContext& ctx, std::uint32_t row, ScoreRow& prev,
                              ScoreRow& cur, BestCell& best, TraceRow* trow) {
  const ScoreParams& params = *ctx.params;
  RowOutcome outcome;

  const std::uint32_t prev_lo = prev.lo;
  const std::uint32_t prev_hi = prev_lo + prev.width;
  const std::uint32_t start_lo = prev.first;

  // Upper bound on this row's extent: the previous row's data plus a
  // bounded insertion run (and never past column n).
  const std::uint32_t j_cap = std::min(ctx.n, prev_hi + ctx.max_right_run);
  cur.ensure_capacity(std::size_t{j_cap} - start_lo + 2);
  cur.lo = start_lo;

  // Conservative mode freezes the cutoff at the best of completed rows;
  // sequential mode lets `best` advance within the row.
  const bool sequential = ctx.sequential;
  const Score frozen_cutoff = best.score - params.ydrop;
  BestCell row_best = best;
  Score cutoff = best.score - params.ydrop;

  if (trow != nullptr) {
    trow->lo = start_lo;
    trow->codes.clear();
    trow->codes.resize(std::size_t{j_cap} - start_lo + 2);
  }

  bool any_viable = false;
  std::uint32_t first_viable = 0;
  std::uint32_t last_viable = 0;

  const BaseCode a_base = ctx.a[row - 1];
  const Score* const sub_row = params.subst[a_base].data();

  Score* const cs = cur.s.data();
  Score* const ci = cur.gi.data();
  Score* const cd = cur.gd.data();
  const Score* const ps = prev.s.data();
  const Score* const pd = prev.gd.data();
  TraceCode* const tc = trow != nullptr ? trow->codes.data() : nullptr;

  // Phase A (vectorized): precompute the D candidates and diagonal sums for
  // the core span where both the up and the diag cell fall inside the
  // previous row — those depend only on completed prev-row data, so they
  // vectorize cleanly. The serial S/I chain, pruning, best tracking, and
  // traceback packing stay in the scalar loop below, which consumes these
  // arrays. The scalar early-break fires only at j >= prev_hi, strictly past
  // the core span, so no precomputed cell is wasted.
  std::uint32_t core_lo = 0;
  std::uint32_t core_count = 0;
  if (ctx.simd.fn != nullptr) {
    const std::uint32_t span_lo = std::max(std::max(start_lo, 1u), prev_lo + 1);
    const std::uint32_t span_hi = std::min(j_cap, prev_hi - 1);  // inclusive
    if (span_lo <= span_hi && span_hi - span_lo + 1 >= kRowSimdMinSpan) {
      RowSimdState& st = ctx.simd;
      if (st.built < span_hi) {
        const std::uint32_t grown = std::min(
            ctx.n, std::max({span_hi, st.built * 2, std::uint32_t{256}}));
        for (std::uint32_t c = 0; c < kAlphabetSize; ++c) st.profile[c].resize(grown);
        for (std::uint32_t col = st.built; col < grown; ++col) {
          const BaseCode b_code = ctx.b[col];
          for (std::uint32_t c = 0; c < kAlphabetSize; ++c) {
            st.profile[c][col] = params.subst[c][b_code];
          }
        }
        st.built = grown;
      }
      core_lo = span_lo;
      core_count = span_hi - span_lo + 1;
      if (st.d_val.size() < core_count) {
        st.d_val.resize(core_count);
        st.diag.resize(core_count);
        st.d_opened.resize(core_count);
      }
      st.fn(ps + (span_lo - prev_lo), ps + (span_lo - 1 - prev_lo),
            pd + (span_lo - prev_lo), st.profile[a_base].data() + (span_lo - 1),
            ctx.open_extend, ctx.extend_only, core_count, st.d_val.data(),
            st.diag.data(), st.d_opened.data());
    }
  }
  const Score* const sim_d = ctx.simd.d_val.data();
  const Score* const sim_g = ctx.simd.diag.data();
  const std::uint8_t* const sim_o = ctx.simd.d_opened.data();

  // Previous-row reads for absolute column j:
  //   s_diag = prev S at j-1, s_up / d_up = prev S / D at j.
  // Valid range for prev arrays: [prev_lo, prev_hi).
  std::uint32_t out = 0;  // index into cur arrays (column start_lo + out)
  Score left_s = kNegativeInfinity;  // cur row, column j-1
  Score left_i = kNegativeInfinity;

  std::uint32_t j = start_lo;
  // Column 0 border cell (only when the region still touches column 0).
  if (j == 0) {
    const Score d_val = params.gap_open + static_cast<Score>(row) * params.gap_extend;
    const bool viable = d_val >= (sequential ? cutoff : frozen_cutoff);
    cs[0] = viable ? d_val : kNegativeInfinity;
    ci[0] = kNegativeInfinity;
    cd[0] = viable ? d_val : kNegativeInfinity;
    if (tc != nullptr) tc[0] = make_trace(kTraceSrcD, false, row == 1);
    if (viable) {
      any_viable = true;
      first_viable = 0;
      last_viable = 0;
      if (sequential) {
        best.consider(cs[0], row, 0);
        cutoff = best.score - params.ydrop;
      } else {
        row_best.consider(cs[0], row, 0);
      }
    }
    left_s = cs[0];
    left_i = ci[0];
    ++outcome.cells;
    out = 1;
    j = 1;
  }

  for (; j <= j_cap; ++j, ++out) {
    // I: gap in A — arrive from the left (current row).
    const Score i_ext = add_score(left_i, ctx.extend_only);
    const Score i_open = add_score(left_s, ctx.open_extend);
    const bool i_opened = i_open >= i_ext;
    const Score i_val = i_opened ? i_open : i_ext;

    // D: gap in B — arrive from above (previous row); diag: substitution
    // candidate. Inside the core span both come precomputed from phase A
    // (bit-identical arithmetic); outside it the scalar forms below also
    // handle the missing-neighbor edges.
    Score d_val;
    Score diag;
    bool d_opened;
    if (j - core_lo < core_count) {  // unsigned: j < core_lo wraps huge
      const std::uint32_t ck = j - core_lo;
      d_val = sim_d[ck];
      diag = sim_g[ck];
      d_opened = sim_o[ck] != 0;
    } else {
      const bool has_up = (j >= prev_lo) & (j < prev_hi);
      const Score s_up = has_up ? ps[j - prev_lo] : kNegativeInfinity;
      const Score d_up = has_up ? pd[j - prev_lo] : kNegativeInfinity;
      const Score d_ext = add_score(d_up, ctx.extend_only);
      const Score d_open = add_score(s_up, ctx.open_extend);
      d_opened = d_open >= d_ext;
      d_val = d_opened ? d_open : d_ext;

      const bool has_diag = (j > prev_lo) & (j <= prev_hi);
      const Score s_diag = has_diag ? ps[j - 1 - prev_lo] : kNegativeInfinity;
      diag = add_score(s_diag, sub_row[ctx.b[j - 1]]);
    }

    // S: diagonal vs the gap states (tie preference diag > I > D).
    Score s_val = diag;
    TraceCode s_src = kTraceSrcDiag;
    if (i_val > s_val) {
      s_val = i_val;
      s_src = kTraceSrcI;
    }
    if (d_val > s_val) {
      s_val = d_val;
      s_src = kTraceSrcD;
    }
    ++outcome.cells;
    if (tc != nullptr) tc[out] = make_trace(s_src, i_opened, d_opened);

    const bool viable =
        s_val > kNegativeInfinity && s_val >= (sequential ? cutoff : frozen_cutoff);
    if (viable) {
      cs[out] = s_val;
      ci[out] = i_val;
      cd[out] = d_val;
      if (sequential) {
        if (best.improved_by(s_val, row, j)) {
          best = BestCell{s_val, row, j};
          cutoff = s_val - params.ydrop;
        }
      } else {
        row_best.consider(s_val, row, j);
      }
      if (!any_viable) {
        any_viable = true;
        first_viable = j;
      }
      last_viable = j;
      left_s = s_val;
      left_i = i_val;
    } else {
      cs[out] = kNegativeInfinity;
      ci[out] = kNegativeInfinity;
      cd[out] = kNegativeInfinity;
      left_s = kNegativeInfinity;
      left_i = kNegativeInfinity;
      // Beyond the previous row's interval only the intra-row insertion
      // chain can carry scores; once it breaks, the row is finished.
      if (j + 1 > prev_hi) {
        ++out;
        break;
      }
    }
  }

  if (!sequential) best = row_best;

  cur.width = out;
  cur.first = first_viable;
  cur.last = last_viable;
  if (trow != nullptr && any_viable) trow->codes.resize(out);

  outcome.any_viable = any_viable;
  outcome.first_viable = first_viable;
  outcome.last_viable = last_viable;
  return outcome;
}

}  // namespace fastz::detail
