#include "align/ydrop_align.hpp"

#include <algorithm>
#include <stdexcept>

#include "align/ydrop_row_core.hpp"

namespace fastz {

// Full-trace driver over the shared row core (ydrop_row_core.hpp): every
// explored row's packed codes are retained, so traceback is a single walk.
// `ydrop_linear_traceback` (ydrop_linear.cpp) runs the same rows but keeps
// only O(n+m) of trace state.
OneSidedResult ydrop_one_sided_align(SeqView a, SeqView b, const ScoreParams& params,
                                     const OneSidedOptions& options) {
  using detail::ScoreRow;
  using detail::TraceRow;

  params.validate();
  OneSidedResult result;
  result.best = BestCell{0, 0, 0};

  const auto n = static_cast<std::uint32_t>(std::min<std::size_t>(b.size(), options.max_cols));
  const auto m = static_cast<std::uint32_t>(std::min<std::size_t>(a.size(), options.max_rows));
  result.truncated = (n < b.size()) || (m < a.size());

  std::vector<TraceRow> trace;
  const bool keep_trace = options.want_traceback;
  if (options.record_row_bounds) result.row_bounds.reserve(128);

  const detail::RowContext ctx = detail::make_row_context(
      a, b, params, n, options.prune == PruneMode::kSequential);

  // ---- Row 0: a pure insertion run from the origin. -----------------------
  ScoreRow prev;
  ScoreRow cur;
  TraceRow row0;
  const std::uint32_t w = detail::init_row0(ctx, prev, keep_trace ? &row0 : nullptr);
  if (keep_trace) trace.push_back(std::move(row0));
  result.max_row_width = w;
  result.cells += w;
  if (options.record_row_bounds) result.row_bounds.push_back({0, w});

  // ---- Rows 1..m ----------------------------------------------------------
  TraceRow trow;
  for (std::uint32_t row = 1; row <= m; ++row) {
    const detail::RowOutcome o = detail::advance_row(ctx, row, prev, cur, result.best,
                                                     keep_trace ? &trow : nullptr);
    result.cells += o.cells;
    if (!o.any_viable) break;

    std::swap(prev, cur);
    if (keep_trace) {
      trace.push_back(TraceRow{trow.lo, trow.codes});  // copy keeps trow's capacity
    }
    if (options.record_row_bounds) {
      result.row_bounds.push_back({o.first_viable, o.last_viable + 1});
    }
    result.max_row_width = std::max(result.max_row_width, o.last_viable + 1 - o.first_viable);
    result.rows_explored = row;
  }

  if (keep_trace) {
    const std::uint32_t ti = options.trace_from_fixed ? options.trace_i : result.best.i;
    const std::uint32_t tj = options.trace_from_fixed ? options.trace_j : result.best.j;
    result.ops = walk_traceback(ti, tj,
                                [&](std::uint32_t i, std::uint32_t j_) -> TraceCode {
                                  const TraceRow& r = trace.at(i);
                                  if (j_ < r.lo || j_ - r.lo >= r.codes.size()) {
                                    throw std::runtime_error(
                                        "ydrop_one_sided_align: traceback escaped the "
                                        "explored region");
                                  }
                                  return r.codes[j_ - r.lo];
                                });
  }
  return result;
}

}  // namespace fastz
