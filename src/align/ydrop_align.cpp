#include "align/ydrop_align.hpp"

#include <algorithm>
#include <stdexcept>

namespace fastz {

namespace {

// One DP row: scores for columns [lo, lo + width). Pruned cells store
// kNegativeInfinity so downstream reads see them as unreachable — LASTZ's
// hard-prune semantics. Buffers are reused across rows (the inner loop must
// not allocate).
struct ScoreRow {
  std::uint32_t lo = 0;
  std::uint32_t width = 0;
  std::uint32_t first = 0;  // first viable column (absolute)
  std::uint32_t last = 0;   // last viable column (absolute)
  std::vector<Score> s;
  std::vector<Score> gi;
  std::vector<Score> gd;

  void ensure_capacity(std::size_t n) {
    if (s.size() < n) {
      s.resize(n);
      gi.resize(n);
      gd.resize(n);
    }
  }
};

struct TraceRow {
  std::uint32_t lo = 0;
  std::vector<TraceCode> codes;
};

// Saturating add that keeps kNegativeInfinity absorbing.
constexpr Score add_score(Score base, Score delta) noexcept {
  return base <= kNegativeInfinity ? kNegativeInfinity : base + delta;
}

}  // namespace

OneSidedResult ydrop_one_sided_align(SeqView a, SeqView b, const ScoreParams& params,
                                     const OneSidedOptions& options) {
  params.validate();
  OneSidedResult result;
  result.best = BestCell{0, 0, 0};

  const auto n = static_cast<std::uint32_t>(std::min<std::size_t>(b.size(), options.max_cols));
  const auto m = static_cast<std::uint32_t>(std::min<std::size_t>(a.size(), options.max_rows));
  result.truncated = (n < b.size()) || (m < a.size());

  std::vector<TraceRow> trace;
  const bool keep_trace = options.want_traceback;
  if (options.record_row_bounds) result.row_bounds.reserve(128);

  // How far a viable insertion chain can run past the previous row's end:
  // each step costs |gap_extend|, and the chain dies once it is ydrop below
  // the best score.
  const Score extend_cost = -params.gap_extend;
  const std::uint32_t max_right_run =
      extend_cost > 0
          ? static_cast<std::uint32_t>((params.ydrop - params.gap_open) / extend_cost) + 2
          : n + 1;

  const Score open_extend = params.gap_open + params.gap_extend;
  const Score extend_only = params.gap_extend;

  // ---- Row 0: a pure insertion run from the origin. -----------------------
  ScoreRow prev;
  ScoreRow cur;
  prev.ensure_capacity(std::size_t{std::min(n, max_right_run)} + 2);
  prev.lo = 0;
  prev.s[0] = 0;
  prev.gi[0] = kNegativeInfinity;
  prev.gd[0] = kNegativeInfinity;
  std::uint32_t w = 1;
  if (keep_trace) {
    trace.push_back({0, {make_trace(kTraceSrcOrigin, false, false)}});
  }
  for (std::uint32_t j = 1; j <= n; ++j) {
    const Score gi = params.gap_open + static_cast<Score>(j) * params.gap_extend;
    if (gi < -params.ydrop) break;  // best is still 0 at (0,0)
    prev.s[w] = gi;
    prev.gi[w] = gi;
    prev.gd[w] = kNegativeInfinity;
    ++w;
    if (keep_trace) trace[0].codes.push_back(make_trace(kTraceSrcI, j == 1, false));
  }
  prev.width = w;
  prev.first = 0;
  prev.last = w - 1;
  result.max_row_width = w;
  result.cells += w;
  if (options.record_row_bounds) result.row_bounds.push_back({0, w});

  // ---- Rows 1..m ----------------------------------------------------------
  TraceRow trow;
  for (std::uint32_t row = 1; row <= m; ++row) {
    const std::uint32_t prev_lo = prev.lo;
    const std::uint32_t prev_hi = prev_lo + prev.width;
    const std::uint32_t start_lo = prev.first;

    // Upper bound on this row's extent: the previous row's data plus a
    // bounded insertion run (and never past column n).
    const std::uint32_t j_cap = std::min(n, prev_hi + max_right_run);
    cur.ensure_capacity(std::size_t{j_cap} - start_lo + 2);
    cur.lo = start_lo;

    // Conservative mode freezes the cutoff at the best of completed rows;
    // sequential mode lets `best` advance within the row.
    const bool sequential = (options.prune == PruneMode::kSequential);
    const Score frozen_cutoff = result.best.score - params.ydrop;
    BestCell row_best = result.best;
    Score cutoff = result.best.score - params.ydrop;

    if (keep_trace) {
      trow.lo = start_lo;
      trow.codes.clear();
      trow.codes.resize(std::size_t{j_cap} - start_lo + 2);
    }

    bool any_viable = false;
    std::uint32_t first_viable = 0;
    std::uint32_t last_viable = 0;

    const BaseCode a_base = a[row - 1];
    const Score* const sub_row = params.subst[a_base].data();

    Score* const cs = cur.s.data();
    Score* const ci = cur.gi.data();
    Score* const cd = cur.gd.data();
    const Score* const ps = prev.s.data();
    const Score* const pd = prev.gd.data();
    TraceCode* const tc = keep_trace ? trow.codes.data() : nullptr;

    // Previous-row reads for absolute column j:
    //   s_diag = prev S at j-1, s_up / d_up = prev S / D at j.
    // Valid range for prev arrays: [prev_lo, prev_hi).
    std::uint32_t out = 0;  // index into cur arrays (column start_lo + out)
    Score left_s = kNegativeInfinity;  // cur row, column j-1
    Score left_i = kNegativeInfinity;

    std::uint32_t j = start_lo;
    // Column 0 border cell (only when the region still touches column 0).
    if (j == 0) {
      const Score d_val = params.gap_open + static_cast<Score>(row) * params.gap_extend;
      const bool viable = d_val >= (sequential ? cutoff : frozen_cutoff);
      cs[0] = viable ? d_val : kNegativeInfinity;
      ci[0] = kNegativeInfinity;
      cd[0] = viable ? d_val : kNegativeInfinity;
      if (tc != nullptr) tc[0] = make_trace(kTraceSrcD, false, row == 1);
      if (viable) {
        any_viable = true;
        first_viable = 0;
        last_viable = 0;
        if (sequential) {
          result.best.consider(cs[0], row, 0);
          cutoff = result.best.score - params.ydrop;
        } else {
          row_best.consider(cs[0], row, 0);
        }
      }
      left_s = cs[0];
      left_i = ci[0];
      ++result.cells;
      out = 1;
      j = 1;
    }

    for (; j <= j_cap; ++j, ++out) {
      // I: gap in A — arrive from the left (current row).
      const Score i_ext = add_score(left_i, extend_only);
      const Score i_open = add_score(left_s, open_extend);
      const bool i_opened = i_open >= i_ext;
      const Score i_val = i_opened ? i_open : i_ext;

      // D: gap in B — arrive from above (previous row).
      const bool has_up = (j >= prev_lo) & (j < prev_hi);
      const Score s_up = has_up ? ps[j - prev_lo] : kNegativeInfinity;
      const Score d_up = has_up ? pd[j - prev_lo] : kNegativeInfinity;
      const Score d_ext = add_score(d_up, extend_only);
      const Score d_open = add_score(s_up, open_extend);
      const bool d_opened = d_open >= d_ext;
      const Score d_val = d_opened ? d_open : d_ext;

      // S: diagonal vs the gap states (tie preference diag > I > D).
      const bool has_diag = (j > prev_lo) & (j <= prev_hi);
      const Score s_diag = has_diag ? ps[j - 1 - prev_lo] : kNegativeInfinity;
      const Score diag = add_score(s_diag, sub_row[b[j - 1]]);
      Score s_val = diag;
      TraceCode s_src = kTraceSrcDiag;
      if (i_val > s_val) {
        s_val = i_val;
        s_src = kTraceSrcI;
      }
      if (d_val > s_val) {
        s_val = d_val;
        s_src = kTraceSrcD;
      }
      ++result.cells;
      if (tc != nullptr) tc[out] = make_trace(s_src, i_opened, d_opened);

      const bool viable =
          s_val > kNegativeInfinity && s_val >= (sequential ? cutoff : frozen_cutoff);
      if (viable) {
        cs[out] = s_val;
        ci[out] = i_val;
        cd[out] = d_val;
        if (sequential) {
          if (result.best.improved_by(s_val, row, j)) {
            result.best = BestCell{s_val, row, j};
            cutoff = s_val - params.ydrop;
          }
        } else {
          row_best.consider(s_val, row, j);
        }
        if (!any_viable) {
          any_viable = true;
          first_viable = j;
        }
        last_viable = j;
        left_s = s_val;
        left_i = i_val;
      } else {
        cs[out] = kNegativeInfinity;
        ci[out] = kNegativeInfinity;
        cd[out] = kNegativeInfinity;
        left_s = kNegativeInfinity;
        left_i = kNegativeInfinity;
        // Beyond the previous row's interval only the intra-row insertion
        // chain can carry scores; once it breaks, the row is finished.
        if (j + 1 > prev_hi) {
          ++out;
          break;
        }
      }
    }

    if (!sequential) result.best = row_best;
    if (!any_viable) break;

    cur.width = out;
    cur.first = first_viable;
    cur.last = last_viable;
    std::swap(prev, cur);

    if (keep_trace) {
      trow.codes.resize(out);
      trace.push_back(TraceRow{trow.lo, trow.codes});  // copy keeps trow's capacity
    }
    if (options.record_row_bounds) result.row_bounds.push_back({first_viable, last_viable + 1});

    result.max_row_width = std::max(result.max_row_width, last_viable + 1 - first_viable);
    result.rows_explored = row;
  }

  if (keep_trace) {
    const std::uint32_t ti = options.trace_from_fixed ? options.trace_i : result.best.i;
    const std::uint32_t tj = options.trace_from_fixed ? options.trace_j : result.best.j;
    result.ops = walk_traceback(ti, tj,
                                [&](std::uint32_t i, std::uint32_t j_) -> TraceCode {
                                  const TraceRow& r = trace.at(i);
                                  if (j_ < r.lo || j_ - r.lo >= r.codes.size()) {
                                    throw std::runtime_error(
                                        "ydrop_one_sided_align: traceback escaped the "
                                        "explored region");
                                  }
                                  return r.codes[j_ - r.lo];
                                });
  }
  return result;
}

}  // namespace fastz
