// Full-matrix Gotoh affine-gap DP — the correctness reference.
//
// Computes the complete (M+1) x (N+1) scoring matrices with no pruning for
// the *prefix-anchored extension* problem: align a prefix of A against a
// prefix of B, anchored at (0,0) with both ends free on the far side, and
// report the maximum-score cell. This is exactly the subproblem LASTZ's
// `ydrop_one_sided_align` solves (one direction of a seed extension); with
// an unbounded y-drop the pruned oracle must match this reference, which is
// what the test suite checks. Quadratic memory — use on small inputs only.
#pragma once

#include <cstdint>
#include <span>

#include "align/alignment.hpp"
#include "score/score_params.hpp"
#include "sequence/dna.hpp"

namespace fastz {

// Canonical tie-break for "best cell" shared by every implementation in
// this repository: maximize score; break ties toward smaller i + j (shorter
// alignment), then smaller i. Keeping one rule everywhere makes the
// inspector / executor / oracle outputs comparable cell-for-cell.
struct BestCell {
  Score score = 0;
  std::uint32_t i = 0;
  std::uint32_t j = 0;

  // Returns true if (score, i, j) candidate is strictly better.
  bool improved_by(Score s, std::uint32_t ci, std::uint32_t cj) const noexcept {
    if (s != score) return s > score;
    const std::uint64_t d_new = std::uint64_t{ci} + cj;
    const std::uint64_t d_old = std::uint64_t{i} + j;
    if (d_new != d_old) return d_new < d_old;
    return ci < i;
  }

  void consider(Score s, std::uint32_t ci, std::uint32_t cj) noexcept {
    if (improved_by(s, ci, cj)) {
      score = s;
      i = ci;
      j = cj;
    }
  }
};

struct ReferenceResult {
  BestCell best;               // best.score >= 0 (cell (0,0) scores 0)
  std::uint64_t cells = 0;     // DP cells computed (excluding borders)
  std::vector<AlignOp> ops;    // path from (0,0) to the best cell
};

struct ReferenceOptions {
  // Vectorize the D/diagonal precompute of each row (plain non-saturating
  // adds, matching the reference arithmetic exactly). Off by default: the
  // reference is first and foremost the simplest-possible oracle, and the
  // SIMD pass exists to be differentially tested against it. Bit-identical
  // output either way.
  bool simd = false;
};

// Reference extension of A[0..M) x B[0..N).
ReferenceResult reference_extend(std::span<const BaseCode> a, std::span<const BaseCode> b,
                                 const ScoreParams& params);
ReferenceResult reference_extend(std::span<const BaseCode> a, std::span<const BaseCode> b,
                                 const ScoreParams& params, const ReferenceOptions& options);

}  // namespace fastz
