// Device descriptions for the virtual-GPU performance model.
//
// This reproduction has no CUDA hardware, so FastZ's kernels execute on a
// functional SIMT substrate (warp-strip execution implemented in C++) and
// their *time* is modeled from counted work against these device
// parameters. Parameter values come from the paper where it states them
// (Sections 3.1.3, 4, 6) and from the public spec sheets otherwise.
//
// The one free parameter per device is `issue_utilization`: the fraction of
// peak warp-issue throughput an irregular, divergent, latency-bound integer
// kernel sustains. It is calibrated once so that the *full* FastZ
// configuration lands near the paper's reported speedup on each GPU
// (43x / 93x / 111x); every other experiment — ablations, per-benchmark
// ordering, breakdowns, cross-genus runs — is then a prediction from
// counted work against the fixed constants. DESIGN.md Section 4.6 and
// EXPERIMENTS.md discuss this calibration.
#pragma once

#include <cstdint>
#include <string>

namespace fastz::gpusim {

struct DeviceSpec {
  std::string name;
  std::uint32_t sm_count = 0;
  std::uint32_t lanes = 0;            // total CUDA cores ("1-wide lanes")
  std::uint32_t warp_width = 32;
  std::uint32_t issue_per_sm = 4;     // warp instructions issued per SM-cycle
  double clock_ghz = 1.0;
  double mem_bandwidth_gbps = 0.0;    // peak, GB/s
  // Sustained fraction of peak bandwidth for the kernels' DP traffic.
  // Chosen as the consistent partner of `issue_utilization`: with both
  // derates applied, the device's *effective* ridge point stays at the
  // paper's derated 15.2 ops/byte (Section 6), so a stage's memory- vs
  // compute-boundedness flips exactly where the paper's roofline analysis
  // says it should.
  double achieved_bw_fraction = 0.10;
  std::uint64_t memory_bytes = 0;
  std::uint32_t shared_mem_per_sm_bytes = 96 * 1024;
  std::uint32_t register_file_per_sm_bytes = 256 * 1024;  // 64k 4-byte registers
  std::uint32_t max_resident_warps_per_sm = 48;
  // SIMD divergence derating from the paper's Section 6 analysis: the 9
  // recurrence operations expand to 23 under the max-operator divergence.
  double divergence_derate = 23.0 / 9.0;
  double issue_utilization = 0.10;    // calibrated; see header comment
  // Instructions per cycle a *single* warp sustains when it has an SM's
  // issue slots to itself. Divergence stalls are already charged through
  // `divergence_derate` (the instruction count is pre-expanded), so this is
  // close to full issue rate minus dependent-chain bubbles. Governs the
  // latency of one long seed-extension, i.e. the bulk-synchronous tail a
  // lone bin-4 alignment imposes on its kernel.
  double single_warp_ipc = 0.85;
  // Fixed host-visible overhead per kernel launch.
  double kernel_launch_overhead_s = 8e-6;
  // Host <-> device copy bandwidth (PCIe gen3/4-ish), used for the "other"
  // component of the execution-time breakdown (Figure 8).
  double pcie_bandwidth_gbps = 11.0;

  std::uint32_t warps_wide() const noexcept { return lanes / warp_width; }

  // Peak warp-instruction throughput (warp-instructions / second).
  double peak_warp_issue_per_s() const noexcept {
    return static_cast<double>(sm_count) * issue_per_sm * clock_ghz * 1e9;
  }
  // Sustained warp-instruction throughput after the utilization derate.
  double sustained_warp_issue_per_s() const noexcept {
    return peak_warp_issue_per_s() * issue_utilization;
  }
  double sustained_bandwidth_bytes_per_s() const noexcept {
    return mem_bandwidth_gbps * 1e9 * achieved_bw_fraction;
  }
};

// Nvidia Titan X (Pascal): 28 SMs, 3584 lanes, ~1 GHz, 12 GB (Section 4).
DeviceSpec titan_x_pascal();
// Nvidia QV100 (Volta): 80 SMs, 5120 lanes, 32 GB.
DeviceSpec v100_volta();
// Nvidia RTX 3080 (Ampere): 68 SMs, 8704 lanes, 10 GB, 760 GB/s,
// 29.77 TFLOP/s peak (Section 6).
DeviceSpec rtx3080_ampere();

// The evaluation's CPU (Section 4): AMD Ryzen 3950x, 16 cores, 3.5 GHz,
// 32 GB; used by the sequential / multicore LASTZ time model.
struct CpuSpec {
  std::string name = "AMD Ryzen 3950x";
  std::uint32_t cores = 16;
  double clock_ghz = 3.5;
  double dram_bandwidth_gbps = 47.0;
  // Sustained DP throughput of the sequential `ydrop_one_sided_align`
  // inner loop (cells/second). The paper characterizes LASTZ as
  // memory-bound with ~24 touched bytes per cell, mostly cache-resident;
  // ~6 cycles/cell at 3.5 GHz. Calibrated jointly with issue_utilization.
  double sequential_cells_per_s = 0.60e9;
  // Per-cell DRAM traffic that caps multicore scaling (the paper explains
  // the 20x-not-32x multicore result as a bandwidth limit).
  double dram_bytes_per_cell = 3.8;
};

CpuSpec ryzen_3950x();

// Modeled sequential LASTZ time for a run that computed `dp_cells`.
double sequential_lastz_time_s(std::uint64_t dp_cells, const CpuSpec& cpu);

// Modeled multicore (inter-seed partitioned) LASTZ time with `processes`
// workers: core scaling capped by the DRAM-bandwidth roofline.
double multicore_lastz_time_s(std::uint64_t dp_cells, const CpuSpec& cpu,
                              std::uint32_t processes);

}  // namespace fastz::gpusim
