#include "gpusim/occupancy.hpp"

#include <algorithm>

namespace fastz::gpusim {

Occupancy compute_occupancy(const DeviceSpec& spec, const KernelResources& resources) {
  Occupancy occ;
  std::uint32_t warps = spec.max_resident_warps_per_sm;
  occ.limiter = "warp slots";

  if (resources.registers_per_thread > 0) {
    const std::uint64_t regs_per_warp =
        std::uint64_t{resources.registers_per_thread} * spec.warp_width * 4;
    const auto reg_limit =
        static_cast<std::uint32_t>(spec.register_file_per_sm_bytes / regs_per_warp);
    if (reg_limit < warps) {
      warps = reg_limit;
      occ.limiter = "registers";
    }
  }
  if (resources.shared_bytes_per_warp > 0) {
    const auto smem_limit = static_cast<std::uint32_t>(
        spec.shared_mem_per_sm_bytes / resources.shared_bytes_per_warp);
    if (smem_limit < warps) {
      warps = smem_limit;
      occ.limiter = "shared memory";
    }
  }
  occ.resident_warps_per_sm = warps;
  return occ;
}

BufferPlacementAnalysis analyze_buffer_placement(const DeviceSpec& spec) {
  BufferPlacementAnalysis out;

  // The paper's arithmetic: 2 blocks x 64 warps x 32 threads x 36 B =
  // 144 KB of shared memory, which exceeds every device's capacity.
  out.smem_bytes_for_full_occupancy = std::uint64_t{kPaperExampleWarpsPerSm} *
                                      spec.warp_width * kCyclicBufferBytesPerThread;

  KernelResources smem_kernel;
  smem_kernel.registers_per_thread = kInspectorBaseRegisters;
  smem_kernel.shared_bytes_per_warp = kCyclicBufferBytesPerThread * spec.warp_width +
                                      kEagerTileBytesPerWarp + kStagingBytesPerWarp;
  out.with_shared_memory_buffers = compute_occupancy(spec, smem_kernel);

  KernelResources reg_kernel;
  // Buffers move into registers: 36 B = 9 additional 4-byte registers; the
  // tile and staging line stay in shared memory.
  reg_kernel.registers_per_thread =
      kInspectorBaseRegisters + kCyclicBufferBytesPerThread / 4;
  reg_kernel.shared_bytes_per_warp = kEagerTileBytesPerWarp + kStagingBytesPerWarp;
  out.with_register_buffers = compute_occupancy(spec, reg_kernel);

  return out;
}

}  // namespace fastz::gpusim
