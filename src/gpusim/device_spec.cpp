#include "gpusim/device_spec.hpp"

#include <algorithm>

namespace fastz::gpusim {

DeviceSpec titan_x_pascal() {
  DeviceSpec d;
  d.name = "Titan X (Pascal)";
  d.sm_count = 28;
  d.lanes = 3584;
  d.issue_per_sm = 4;
  d.clock_ghz = 1.0;
  d.mem_bandwidth_gbps = 480.0;
  d.memory_bytes = 12ull << 30;
  d.shared_mem_per_sm_bytes = 96 * 1024;
  d.max_resident_warps_per_sm = 64;
  // Older architecture: relatively better sustained utilization of its
  // much lower peak (fewer warps contending for issue slots).
  d.issue_utilization = 0.285;
  return d;
}

DeviceSpec v100_volta() {
  DeviceSpec d;
  d.name = "QV100 (Volta)";
  d.sm_count = 80;
  d.lanes = 5120;
  d.issue_per_sm = 2;  // 64 FP32/INT32 lanes per SM = 2 warp-issues/cycle
  d.clock_ghz = 1.53;
  d.mem_bandwidth_gbps = 900.0;
  d.memory_bytes = 32ull << 30;
  d.shared_mem_per_sm_bytes = 96 * 1024;
  d.max_resident_warps_per_sm = 64;
  d.issue_utilization = 0.35;
  return d;
}

DeviceSpec rtx3080_ampere() {
  DeviceSpec d;
  d.name = "RTX 3080 (Ampere)";
  d.sm_count = 68;
  d.lanes = 8704;
  d.issue_per_sm = 4;
  d.clock_ghz = 1.71;
  d.mem_bandwidth_gbps = 760.0;
  d.memory_bytes = 10ull << 30;
  d.shared_mem_per_sm_bytes = 100 * 1024;
  d.max_resident_warps_per_sm = 48;
  d.issue_utilization = 0.245;
  return d;
}

CpuSpec ryzen_3950x() { return CpuSpec{}; }

double sequential_lastz_time_s(std::uint64_t dp_cells, const CpuSpec& cpu) {
  return static_cast<double>(dp_cells) / cpu.sequential_cells_per_s;
}

double multicore_lastz_time_s(std::uint64_t dp_cells, const CpuSpec& cpu,
                              std::uint32_t processes) {
  if (processes == 0) processes = 1;
  // Inter-seed partitioning is embarrassingly parallel, so compute scales
  // with cores; SMT (two hardware threads per core on the 3950x) buys a
  // further ~40% on this latency-bound integer loop. Aggregate DRAM
  // traffic does not scale, which is what caps the paper's multicore run
  // at 20x instead of 32x.
  const double scaling = std::min<double>(processes, cpu.cores * 1.4);
  const double compute_s =
      static_cast<double>(dp_cells) / (cpu.sequential_cells_per_s * scaling);
  const double memory_s = static_cast<double>(dp_cells) * cpu.dram_bytes_per_cell /
                          (cpu.dram_bandwidth_gbps * 1e9);
  return std::max(compute_s, memory_s);
}

}  // namespace fastz::gpusim
