// Nsight-style counter surface for the virtual GPU.
//
// FastZ's headline claims are counter-level claims — ~96% of score-matrix
// traffic elided by cyclic register buffering (Section 3.2), >80% of seeds
// resolved by the inspector's eager traceback (Section 3.1.2), and length
// binning removing the bulk-synchronous load imbalance (Section 3.3). The
// aggregate KernelCost cannot show any of them per kernel or per SM; a
// ProfilerSession can. While one is installed, every KernelSimulator launch
// records a KernelProfile: the launch tag (kernel name, pipeline phase,
// stream id, length-bin id, multi-GPU shard), the modeled cost, hardware
// counters (issued vs stalled warp-cycles, achieved occupancy, divergence
// derating, per-SM busy time and the bulk-synchronous tail), the per-level
// memory traffic the kernel moved, and the kernel's interval on the
// simulated per-stream timeline.
//
// Consumers: `fastz_prof` (per-kernel table + fastz.profile/v1 JSON), the
// Chrome-trace export (kernel lanes and counter tracks merged with the
// host-side spans), and `fastz_benchdiff` (regression gating in CI). See
// docs/PROFILING.md.
//
// Cost discipline matches the telemetry subsystem: with no session
// installed, the simulator pays exactly one relaxed atomic load per launch.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "gpusim/kernel_sim.hpp"
#include "gpusim/memory_ledger.hpp"
#include "util/digest.hpp"

namespace fastz::gpusim {

// Identity of one kernel launch. The pipeline labels its launches
// ("inspector", "executor.bin2", ...); `stream` is assigned by the
// simulator's stream scheduler, `bin` is the executor length-bin id
// (0..4 for the 512/2048/8192/32768 edges + overflow; -1 when the kernel
// is not length-binned), `shard` the multi-GPU device index.
struct KernelTag {
  std::string name = "kernel";
  std::string phase;          // "inspector" | "executor" | ""
  std::uint32_t stream = 0;
  std::int32_t bin = -1;
  std::uint32_t shard = 0;
  // Per-level traffic attribution of this launch, filled by the caller only
  // while a ProfilerSession is installed (WarpTask stays two words so the
  // unprofiled scheduling path keeps its footprint — see kernel_sim.hpp).
  // In run_streamed, a single shared base tag attributes its traffic to the
  // first chunk only; per-chunk tags attribute exactly.
  MemoryLedger traffic;
  // Owning service batch / request (zero when the launch happened outside
  // the alignment service). Callers normally leave these zero:
  // ProfilerSession::record stamps them from the launching thread's
  // telemetry::TraceContext, so every launch a worker performs on behalf
  // of a request is attributable in the merged Chrome trace.
  Digest128 batch{};
  Digest128 request{};
};

// Modeled hardware counters of one kernel, in the vocabulary of a GPU
// profiler. Definitions (see docs/PROFILING.md for the derivations):
//   issued_warp_cycles  — warp-instruction issues after divergence derating
//                         (each derated instruction occupies one issue slot
//                         for one cycle).
//   stalled_warp_cycles — issue-slot cycles inside the kernel's span that
//                         did not retire an instruction: dependent-chain
//                         bubbles, the bulk-synchronous tail, and memory
//                         stalls when the roofline binds.
//   achieved_occupancy  — time-weighted fraction of the device's issue
//                         slots holding a resident warp, in (0, 1].
//   sm_busy_s           — per-SM seconds spent executing warp-tasks; the
//                         spread across SMs is the load-imbalance signal
//                         binning exists to fix.
//   tail_latency_s      — makespan minus the earliest SM finish time: how
//                         long the most idle SM waited at the kernel's
//                         bulk-synchronous barrier.
struct HwCounters {
  std::uint64_t tasks = 0;
  std::uint64_t warp_instructions = 0;  // pre-derate
  std::uint64_t issued_warp_cycles = 0;
  std::uint64_t stalled_warp_cycles = 0;
  double achieved_occupancy = 0.0;
  double divergence_derate = 1.0;
  double tail_latency_s = 0.0;
  std::vector<double> sm_busy_s;
  // Per-kernel per-level traffic attribution, copied from the launch's
  // KernelTag::traffic.
  MemoryLedger traffic;

  double max_sm_busy_s() const noexcept;
  double mean_sm_busy_s() const noexcept;
  // Load-imbalance factor: max over mean per-SM busy time (1.0 = perfectly
  // balanced, higher = one SM holds the kernel hostage).
  double load_imbalance() const noexcept;

  // Accumulates counters (per-SM busy times elementwise; occupancy and
  // derate as task-weighted means).
  void merge(const HwCounters& other);
};

// One recorded launch: tag + cost + counters + simulated-timeline interval.
struct KernelProfile {
  KernelTag tag;
  KernelCost cost;
  HwCounters counters;
  double start_s = 0.0;  // simulated seconds since the session started
  double end_s = 0.0;
};

class ProfilerSession {
 public:
  ProfilerSession() = default;
  ~ProfilerSession();

  ProfilerSession(const ProfilerSession&) = delete;
  ProfilerSession& operator=(const ProfilerSession&) = delete;

  // Makes this session the process-wide active one. At most one session can
  // be installed at a time (install over an existing one replaces it).
  void install() noexcept;
  void uninstall() noexcept;

  // The installed session, or nullptr. One relaxed load — this is the whole
  // cost of a launch while profiling is off.
  static ProfilerSession* active() noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  // ---- Recording (called by KernelSimulator / the pipeline). --------------
  void record(KernelProfile profile);
  // Simulated-timeline cursor: kernels are placed end-to-end per phase,
  // overlapping across streams within one run_streamed call.
  double now_s() const;
  void advance(double dt);
  // Pipeline-level tallies behind the summary ratios.
  void note_seeds(std::uint64_t seeds, std::uint64_t eager_handled);

  // ---- Queries. -----------------------------------------------------------
  std::vector<KernelProfile> kernels() const;
  std::size_t kernel_count() const;
  std::uint64_t seeds() const;
  std::uint64_t eager_handled() const;
  // Fraction of inspected seeds the eager-traceback tile finished (the
  // paper's >80%); 0 when no derive ran under this session.
  double eager_hit_rate() const;
  // Traffic summed over every recorded kernel.
  MemoryLedger traffic() const;
  // Session-wide score-traffic elision ratio (the paper's ~96%).
  double score_elision_ratio() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<KernelProfile> kernels_;
  double timeline_s_ = 0.0;
  std::uint64_t seeds_ = 0;
  std::uint64_t eager_handled_ = 0;

  static std::atomic<ProfilerSession*> active_;
};

// RAII install/uninstall, for benches and tests.
class ScopedProfiler {
 public:
  explicit ScopedProfiler(ProfilerSession& session) noexcept : session_(session) {
    session_.install();
  }
  ~ScopedProfiler() { session_.uninstall(); }
  ScopedProfiler(const ScopedProfiler&) = delete;
  ScopedProfiler& operator=(const ScopedProfiler&) = delete;

 private:
  ProfilerSession& session_;
};

}  // namespace fastz::gpusim
