// Byte-accurate accounting of the memory traffic a kernel configuration
// generates. FastZ's central claim is traffic *elimination* (Sections 3.2
// and 6 of the paper); the ledger is filled by the functional kernels from
// the work they actually perform, and the roofline experiment (bench_roofline)
// reports operational intensities from it.
#pragma once

#include <cstdint>

namespace fastz::gpusim {

struct MemoryLedger {
  // DP score-matrix traffic (bytes). With cyclic use-and-discard buffering
  // these stay in registers and only strip-boundary lanes spill.
  std::uint64_t score_read_bytes = 0;
  std::uint64_t score_write_bytes = 0;
  // Strip-boundary spills of the three-diagonal register state (12 bytes
  // per boundary cell: S, I, D at 4 bytes each — Section 6).
  std::uint64_t boundary_spill_bytes = 0;
  // Traceback state: logical bytes (one packed byte per executor cell) and
  // wire bytes after write-combining. Staged through shared memory the two
  // are equal; un-staged byte stores cost a full 32-byte sector each.
  std::uint64_t traceback_bytes = 0;
  std::uint64_t traceback_wire_bytes = 0;
  // Sequence bases fetched by the DP (served from L2/texture in practice;
  // tracked for completeness, charged at a small fraction).
  std::uint64_t sequence_bytes = 0;
  // Host <-> device copies (seeds in, alignments out, sequences).
  std::uint64_t host_copy_bytes = 0;
  // Per-level placement of the traffic (the Nsight-style memory hierarchy
  // view the profiler reports). `register_elided_bytes` is score traffic
  // that the cyclic use-and-discard buffers kept in per-lane registers —
  // the would-be DRAM bytes the paper's Section 3.2 claims are eliminated.
  // `shared_staged_bytes` is traceback traffic write-combined through the
  // shared-memory staging line before reaching DRAM.
  std::uint64_t register_elided_bytes = 0;
  std::uint64_t shared_staged_bytes = 0;
  // Device-resident traceback allocation, summed over tasks at each task's
  // own high-water mark (an allocation footprint, not traffic — hence not in
  // device_bytes()). Dense rectangle tasks contribute their whole packed
  // matrix; Hirschberg tasks contribute one base block plus live
  // checkpoints, O(n + m) per task. This is the number the linear-space
  // path exists to shrink.
  std::uint64_t traceback_resident_bytes = 0;
  // Device-resident sequence staging of the batched dispatcher: the bases a
  // packed launch keeps staged while it runs, doubled when the scheduler
  // double-buffers so the next launch's sequences upload under the current
  // one. High-water footprint of one derive (an allocation, not traffic —
  // hence not in device_bytes()); merge() sums footprints like
  // traceback_resident_bytes.
  std::uint64_t staging_buffer_bytes = 0;

  std::uint64_t device_bytes() const noexcept {
    return score_read_bytes + score_write_bytes + boundary_spill_bytes +
           traceback_wire_bytes + sequence_bytes;
  }

  // ---- Per-level view (registers / shared / L2 / DRAM). --------------------
  // Score bytes that actually reached DRAM: the full-matrix read/write
  // traffic (cyclic buffering off) plus the strip-boundary spills.
  std::uint64_t materialized_score_bytes() const noexcept {
    return score_read_bytes + score_write_bytes + boundary_spill_bytes;
  }
  // Sequence fetches are served from L2/texture (charged at a fraction by
  // the roofline; accounted at this level by the profiler).
  std::uint64_t l2_bytes() const noexcept { return sequence_bytes; }
  std::uint64_t dram_bytes() const noexcept {
    return materialized_score_bytes() + traceback_wire_bytes;
  }
  // Fraction of the score-matrix traffic that never left registers — the
  // paper's ~96% elision claim (Section 3.2 / Section 6).
  double score_elision_ratio() const noexcept {
    const std::uint64_t total = register_elided_bytes + materialized_score_bytes();
    return total == 0 ? 0.0
                      : static_cast<double>(register_elided_bytes) /
                            static_cast<double>(total);
  }

  void merge(const MemoryLedger& other) noexcept {
    score_read_bytes += other.score_read_bytes;
    score_write_bytes += other.score_write_bytes;
    boundary_spill_bytes += other.boundary_spill_bytes;
    traceback_bytes += other.traceback_bytes;
    traceback_wire_bytes += other.traceback_wire_bytes;
    sequence_bytes += other.sequence_bytes;
    host_copy_bytes += other.host_copy_bytes;
    register_elided_bytes += other.register_elided_bytes;
    shared_staged_bytes += other.shared_staged_bytes;
    traceback_resident_bytes += other.traceback_resident_bytes;
    staging_buffer_bytes += other.staging_buffer_bytes;
  }
};

// Cost constants shared by the kernels' accounting (Figure 1 / Section 6 of
// the paper).
inline constexpr std::uint64_t kOpsPerCell = 9;          // 5 adds + 4 compares
inline constexpr std::uint64_t kScoreReadBytesPerCell = 20;   // 5 reads x 4 B
inline constexpr std::uint64_t kScoreWriteBytesPerCell = 12;  // 3 writes x 4 B
inline constexpr std::uint64_t kBoundarySpillBytes = 12;      // S, I, D x 4 B
inline constexpr std::uint64_t kSectorBytes = 32;  // DRAM sector for stray byte writes

}  // namespace fastz::gpusim
