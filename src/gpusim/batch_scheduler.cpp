#include "gpusim/batch_scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

namespace fastz::gpusim {

LaunchPlan pack_tasks(std::span<const BatchTask> tasks, const PackOptions& options) {
  LaunchPlan plan;
  if (tasks.empty()) return plan;

  // First-fit in input order: close the current launch exactly when the
  // next task's allocation would overflow the budget. An oversized task on
  // an empty launch is admitted alone — packing cannot shrink it.
  PackedLaunch current;
  auto flush = [&] {
    if (current.tasks.empty()) return;
    plan.launches.push_back(std::move(current));
    current = PackedLaunch{};
  };
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const BatchTask& task = tasks[i];
    if (options.memory_budget > 0 && !current.tasks.empty() &&
        current.resident_bytes + task.resident_bytes > options.memory_budget) {
      flush();
    }
    current.tasks.push_back(task.work);
    current.order.push_back(static_cast<std::uint32_t>(i));
    current.resident_bytes += task.resident_bytes;
    current.warp_instructions += task.work.warp_instructions;
    current.mem_bytes += task.work.mem_bytes;
  }
  flush();

  if (!options.balance) return plan;
  for (PackedLaunch& launch : plan.launches) {
    // LPT with input-index tiebreak: a full deterministic order, so the
    // plan (and every modeled time derived from it) is reproducible.
    std::vector<std::uint32_t> perm(launch.tasks.size());
    std::iota(perm.begin(), perm.end(), 0u);
    std::sort(perm.begin(), perm.end(), [&](std::uint32_t x, std::uint32_t y) {
      const std::uint64_t wx = launch.tasks[x].warp_instructions;
      const std::uint64_t wy = launch.tasks[y].warp_instructions;
      if (wx != wy) return wx > wy;
      return launch.order[x] < launch.order[y];
    });
    std::vector<WarpTask> sorted_tasks(launch.tasks.size());
    std::vector<std::uint32_t> sorted_order(launch.order.size());
    for (std::size_t p = 0; p < perm.size(); ++p) {
      sorted_tasks[p] = launch.tasks[perm[p]];
      sorted_order[p] = launch.order[perm[p]];
    }
    launch.tasks = std::move(sorted_tasks);
    launch.order = std::move(sorted_order);
  }
  return plan;
}

double list_makespan(std::span<const WarpTask> tasks, std::uint32_t slots) {
  slots = std::max<std::uint32_t>(slots, 1);
  std::priority_queue<double, std::vector<double>, std::greater<>> finish;
  for (std::uint32_t s = 0; s < slots; ++s) finish.push(0.0);
  double makespan = 0.0;
  for (const WarpTask& task : tasks) {
    const double start = finish.top();
    finish.pop();
    const double end = start + static_cast<double>(task.warp_instructions);
    makespan = std::max(makespan, end);
    finish.push(end);
  }
  return makespan;
}

}  // namespace fastz::gpusim
