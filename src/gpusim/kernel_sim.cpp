#include "gpusim/kernel_sim.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "gpusim/profiler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace fastz::gpusim {

namespace {

// Modeled (virtual-GPU) per-kernel components, recorded as integer
// nanoseconds so they land in the same counter/histogram machinery as the
// functional counters. Gated on the telemetry flag by the caller.
void record_kernel_cost(const KernelCost& cost) {
  // This is the per-launch hot path under concurrent shard workers; the
  // registry lookups take a global mutex, so resolve them once (cached
  // references stay valid for the registry's lifetime) and leave only
  // lock-free adds per launch.
  static auto& reg = telemetry::MetricsRegistry::global();
  static auto& c_kernels = reg.counter("gpusim.kernels");
  static auto& c_compute = reg.counter("gpusim.kernel.compute_ns");
  static auto& c_memory = reg.counter("gpusim.kernel.memory_ns");
  static auto& c_launch = reg.counter("gpusim.kernel.launch_ns");
  static auto& c_instr = reg.counter("gpusim.kernel.warp_instructions");
  static auto& c_bytes = reg.counter("gpusim.kernel.mem_bytes");
  static auto& h_tasks = reg.histogram("gpusim.kernel.tasks");
  c_kernels.add(1);
  c_compute.add(static_cast<std::uint64_t>(cost.compute_time_s * 1e9));
  c_memory.add(static_cast<std::uint64_t>(cost.memory_time_s * 1e9));
  c_launch.add(static_cast<std::uint64_t>(cost.launch_overhead_s * 1e9));
  c_instr.add(cost.warp_instructions);
  c_bytes.add(cost.mem_bytes);
  h_tasks.record(cost.tasks);
}

// Profiled launches also surface as registry counters so a --trace/--json
// bench run carries the profiler's aggregates without the profile file.
void record_profiled_launch(const KernelProfile& profile) {
  if (!telemetry::enabled()) return;
  static auto& reg = telemetry::MetricsRegistry::global();
  static auto& c_kernels = reg.counter("gpusim.profile.kernels");
  static auto& c_issued = reg.counter("gpusim.profile.issued_warp_cycles");
  static auto& c_stalled = reg.counter("gpusim.profile.stalled_warp_cycles");
  static auto& h_occ = reg.histogram("gpusim.profile.occupancy_milli");
  static auto& h_imb = reg.histogram("gpusim.profile.imbalance_milli");
  c_kernels.add(1);
  c_issued.add(profile.counters.issued_warp_cycles);
  c_stalled.add(profile.counters.stalled_warp_cycles);
  h_occ.record(static_cast<std::uint64_t>(profile.counters.achieved_occupancy * 1000.0));
  h_imb.record(static_cast<std::uint64_t>(profile.counters.load_imbalance() * 1000.0));
}

}  // namespace

double KernelSimulator::task_time_s(const WarpTask& task) const noexcept {
  // Latency of the task running alone: a single warp progresses at its
  // dependent-chain IPC — this is what sets the bulk-synchronous tail of a
  // kernel holding one long alignment. Aggregate throughput is capped
  // separately in run_kernel().
  const double warp_rate = spec_.clock_ghz * 1e9 * spec_.single_warp_ipc;
  const double instructions =
      static_cast<double>(task.warp_instructions) * spec_.divergence_derate;
  return instructions / warp_rate;
}

KernelCost KernelSimulator::simulate(std::span<const WarpTask> tasks,
                                     HwCounters* counters) const {
  if (counters != nullptr) return simulate_profiled(tasks, *counters);

  // Unprofiled hot path, structurally identical to the pre-profiler code:
  // the heap holds bare finish times (one word per slot, no slot ids, no
  // per-iteration profiling branches). Keeping this loop lean is what holds
  // the disabled-profiler overhead under the 2% budget.
  KernelCost cost;
  cost.tasks = tasks.size();
  cost.launch_overhead_s = spec_.kernel_launch_overhead_s;
  if (tasks.empty()) {
    cost.time_s = cost.launch_overhead_s;
    return cost;
  }

  // Greedy list scheduling: each task goes to the earliest-finishing slot.
  // This is how the hardware work-distributor behaves to first order, and
  // it exposes the bulk-synchronous tail: the kernel ends at the *latest*
  // slot, so one long alignment in a kernel of short ones leaves the rest
  // of the device idle.
  const std::uint32_t slots = slot_count();
  std::priority_queue<double, std::vector<double>, std::greater<>> finish;
  for (std::uint32_t s = 0; s < slots; ++s) finish.push(0.0);

  double makespan = 0.0;
  for (const WarpTask& task : tasks) {
    const double start = finish.top();
    finish.pop();
    const double end = start + task_time_s(task);
    makespan = std::max(makespan, end);
    finish.push(end);
    cost.warp_instructions += task.warp_instructions;
    cost.mem_bytes += task.mem_bytes;
  }

  // Two compute rooflines: the latency makespan (tasks at single-warp
  // rate over the slots) and the device's sustained issue throughput for
  // the aggregate instruction stream — whichever binds.
  const double throughput_s =
      static_cast<double>(cost.warp_instructions) * spec_.divergence_derate /
      spec_.sustained_warp_issue_per_s();
  cost.compute_time_s = std::max(makespan, throughput_s);
  cost.memory_time_s =
      static_cast<double>(cost.mem_bytes) / spec_.sustained_bandwidth_bytes_per_s();
  cost.time_s = std::max(cost.compute_time_s, cost.memory_time_s) + cost.launch_overhead_s;
  return cost;
}

KernelCost KernelSimulator::simulate_profiled(std::span<const WarpTask> tasks,
                                              HwCounters& counters) const {
  KernelCost cost;
  cost.tasks = tasks.size();
  cost.launch_overhead_s = spec_.kernel_launch_overhead_s;
  if (tasks.empty()) {
    cost.time_s = cost.launch_overhead_s;
    counters.divergence_derate = spec_.divergence_derate;
    counters.sm_busy_s.assign(spec_.sm_count, 0.0);
    return cost;
  }

  // Same greedy list schedule as the unprofiled path, but the heap
  // additionally carries the slot id so busy time lands on the right SM.
  // Slot s lives on SM s % sm_count, so the initial round-robin spreads
  // tasks across SMs before doubling up issue slots.
  const std::uint32_t slots = slot_count();
  std::vector<double> sm_busy(spec_.sm_count, 0.0);
  std::vector<double> sm_finish(spec_.sm_count, 0.0);
  using Slot = std::pair<double, std::uint32_t>;  // (finish time, slot id)
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> finish;
  for (std::uint32_t s = 0; s < slots; ++s) finish.push({0.0, s});

  double makespan = 0.0;
  double busy_s = 0.0;
  for (const WarpTask& task : tasks) {
    const auto [start, slot] = finish.top();
    finish.pop();
    const double dt = task_time_s(task);
    const double end = start + dt;
    makespan = std::max(makespan, end);
    finish.push({end, slot});
    cost.warp_instructions += task.warp_instructions;
    cost.mem_bytes += task.mem_bytes;
    busy_s += dt;
    const std::uint32_t sm = slot % spec_.sm_count;
    sm_busy[sm] += dt;
    sm_finish[sm] = std::max(sm_finish[sm], end);
  }

  const double derated_instructions =
      static_cast<double>(cost.warp_instructions) * spec_.divergence_derate;
  const double throughput_s = derated_instructions / spec_.sustained_warp_issue_per_s();
  cost.compute_time_s = std::max(makespan, throughput_s);
  cost.memory_time_s =
      static_cast<double>(cost.mem_bytes) / spec_.sustained_bandwidth_bytes_per_s();
  cost.time_s = std::max(cost.compute_time_s, cost.memory_time_s) + cost.launch_overhead_s;

  counters.tasks = cost.tasks;
  counters.warp_instructions = cost.warp_instructions;
  counters.divergence_derate = spec_.divergence_derate;
  counters.sm_busy_s = std::move(sm_busy);
  // Issued cycles: one issue slot for one cycle per derated instruction.
  counters.issued_warp_cycles = static_cast<std::uint64_t>(std::llround(derated_instructions));
  // Stalls: every issue-slot cycle inside the kernel's span (makespan or
  // whichever roofline stretched it) that did not retire an instruction —
  // dependent-chain bubbles, tail idling, memory stalls.
  const double span_s = cost.time_s - cost.launch_overhead_s;
  const double span_cycles = span_s * spec_.clock_ghz * 1e9;
  const double total_slot_cycles = span_cycles * static_cast<double>(slots);
  counters.stalled_warp_cycles = static_cast<std::uint64_t>(std::llround(
      std::max(0.0, total_slot_cycles - derated_instructions)));
  // Occupancy: time-weighted fraction of issue slots holding a warp.
  counters.achieved_occupancy =
      span_s > 0.0 ? busy_s / (span_s * static_cast<double>(slots)) : 0.0;
  // Bulk-synchronous tail: the earliest-finishing SM's wait at the
  // kernel-end barrier.
  double earliest = makespan;
  for (const double f : sm_finish) earliest = std::min(earliest, f);
  counters.tail_latency_s = makespan - earliest;
  return cost;
}

KernelCost KernelSimulator::run_kernel(std::span<const WarpTask> tasks) const {
  // Skip the KernelTag (two strings + a ledger) entirely while no profiler
  // is installed — this overload sits on unprofiled hot paths.
  if (ProfilerSession::active() == nullptr) {
    const KernelCost cost = simulate(tasks, nullptr);
    if (telemetry::enabled()) record_kernel_cost(cost);
    return cost;
  }
  return run_kernel(tasks, KernelTag{});
}

KernelCost KernelSimulator::run_kernel(std::span<const WarpTask> tasks,
                                       const KernelTag& tag) const {
  ProfilerSession* session = ProfilerSession::active();
  if (session == nullptr) {
    const KernelCost cost = simulate(tasks, nullptr);
    if (telemetry::enabled()) record_kernel_cost(cost);
    return cost;
  }

  KernelProfile profile;
  profile.tag = tag;
  profile.cost = simulate(tasks, &profile.counters);
  profile.counters.traffic = tag.traffic;
  if (telemetry::enabled()) record_kernel_cost(profile.cost);
  profile.start_s = session->now_s();
  profile.end_s = profile.start_s + profile.cost.time_s;
  session->advance(profile.cost.time_s);
  record_profiled_launch(profile);
  const KernelCost cost = profile.cost;
  session->record(std::move(profile));
  return cost;
}

KernelCost KernelSimulator::run_streamed(const std::vector<std::vector<WarpTask>>& chunks,
                                         std::uint32_t streams) const {
  return run_streamed(chunks, streams, {});
}

KernelCost KernelSimulator::run_streamed(const std::vector<std::vector<WarpTask>>& chunks,
                                         std::uint32_t streams,
                                         std::span<const KernelTag> tags) const {
  auto chunk_tag = [&](std::size_t i) -> KernelTag {
    if (tags.empty()) return KernelTag{};
    return tags.size() == 1 ? tags.front() : tags[i];
  };

  ProfilerSession* session = ProfilerSession::active();
  KernelCost total;
  if (streams <= 1) {
    // Serialized chunks: every chunk pays its own bulk-synchronous tail.
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      KernelCost c;
      if (session == nullptr) {
        c = simulate(chunks[i], nullptr);
        if (telemetry::enabled()) record_kernel_cost(c);
      } else {
        KernelTag tag = chunk_tag(i);
        tag.stream = 0;
        if (tags.size() == 1 && i > 0) tag.traffic = MemoryLedger{};
        c = run_kernel(chunks[i], tag);
      }
      total.time_s += c.time_s;
      total.compute_time_s += c.compute_time_s;
      total.memory_time_s += c.memory_time_s;
      total.launch_overhead_s += c.launch_overhead_s;
      total.tasks += c.tasks;
      total.warp_instructions += c.warp_instructions;
      total.mem_bytes += c.mem_bytes;
    }
    return total;
  }

  // Streams overlap chunk execution: the device sees one pooled schedule.
  // Because every stream's first kernel launches at t = 0, a kernel holding
  // long tasks (a high bin) gets its long tasks started immediately; model
  // that with longest-processing-time ordering of the pooled task list (the
  // classic makespan-minimizing list order).
  std::vector<WarpTask> pooled;
  std::size_t total_tasks = 0;
  for (const auto& chunk : chunks) total_tasks += chunk.size();
  pooled.reserve(total_tasks);
  for (const auto& chunk : chunks) pooled.insert(pooled.end(), chunk.begin(), chunk.end());
  std::sort(pooled.begin(), pooled.end(), [](const WarpTask& x, const WarpTask& y) {
    return x.warp_instructions > y.warp_instructions;
  });

  total = simulate(pooled, nullptr);
  // Launch overheads stay per-chunk but overlap across streams.
  const std::size_t chunks_per_stream =
      (chunks.size() + streams - 1) / std::max<std::uint32_t>(streams, 1);
  total.launch_overhead_s = spec_.kernel_launch_overhead_s *
                            static_cast<double>(std::max<std::size_t>(chunks_per_stream, 1));
  total.time_s = std::max(total.compute_time_s, total.memory_time_s) +
                 total.launch_overhead_s;
  if (telemetry::enabled()) record_kernel_cost(total);

  if (session != nullptr) {
    // Per-chunk profiles on a per-stream timeline. Each chunk is costed
    // standalone for its counters; intervals are then scaled so the longest
    // stream lane spans exactly the pooled (overlapped) total — the
    // timeline stays consistent with the modeled wall-clock.
    const double base = session->now_s();
    std::vector<double> cursor(streams, 0.0);
    std::vector<KernelProfile> profiles;
    profiles.reserve(chunks.size());
    double longest = 0.0;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      KernelProfile profile;
      profile.tag = chunk_tag(i);
      profile.tag.stream = static_cast<std::uint32_t>(i % streams);
      // A shared base tag cannot split its traffic across chunks — attribute
      // it once (first chunk) instead of duplicating it per launch.
      if (tags.size() == 1 && i > 0) profile.tag.traffic = MemoryLedger{};
      profile.cost = simulate(chunks[i], &profile.counters);
      profile.counters.traffic = profile.tag.traffic;
      profile.start_s = cursor[profile.tag.stream];
      profile.end_s = profile.start_s + profile.cost.time_s;
      cursor[profile.tag.stream] = profile.end_s;
      longest = std::max(longest, profile.end_s);
      profiles.push_back(std::move(profile));
    }
    const double scale = longest > 0.0 ? total.time_s / longest : 1.0;
    for (KernelProfile& profile : profiles) {
      profile.start_s = base + profile.start_s * scale;
      profile.end_s = base + profile.end_s * scale;
      record_profiled_launch(profile);
      session->record(std::move(profile));
    }
    session->advance(total.time_s);
  }
  return total;
}

KernelCost KernelSimulator::run_contended(const std::vector<std::vector<WarpTask>>& chunks,
                                          std::span<const std::uint32_t> groups,
                                          std::uint32_t streams,
                                          std::span<const KernelTag> tags) const {
  bool contended = false;
  if (streams > 1 && groups.size() == chunks.size()) {
    std::vector<std::uint32_t> seen(groups.begin(), groups.end());
    std::sort(seen.begin(), seen.end());
    contended = std::adjacent_find(seen.begin(), seen.end()) != seen.end();
  }
  if (!contended) return run_streamed(chunks, streams, tags);

  // A split bin's batches reuse one allocation and must retire in turn;
  // express that as dependency chains per group and let the pipeline
  // scheduler overlap everything else. Unlimited budget: the chains *are*
  // the memory constraint here.
  std::vector<StreamLaunch> launches(chunks.size());
  std::vector<std::uint32_t> last_of_group;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    launches[i].tasks = chunks[i];
    const std::uint32_t g = groups[i];
    if (g >= last_of_group.size()) last_of_group.resize(g + 1, UINT32_MAX);
    if (last_of_group[g] != UINT32_MAX) launches[i].deps.push_back(last_of_group[g]);
    last_of_group[g] = static_cast<std::uint32_t>(i);
  }
  return run_pipeline(launches, streams, 0, tags).total;
}

PipelineRun KernelSimulator::run_pipeline(std::span<const StreamLaunch> launches,
                                          std::uint32_t streams,
                                          std::uint64_t memory_budget,
                                          std::span<const KernelTag> tags) const {
  streams = std::max<std::uint32_t>(streams, 1);
  ProfilerSession* const session = ProfilerSession::active();
  const std::size_t n = launches.size();

  PipelineRun run;
  run.launches.reserve(n);
  run.start_s.resize(n, 0.0);
  run.end_s.resize(n, 0.0);
  if (n == 0) return run;

  std::vector<HwCounters> counters(session != nullptr ? n : 0);
  for (std::size_t i = 0; i < n; ++i) {
    run.launches.push_back(
        simulate(launches[i].tasks, session != nullptr ? &counters[i] : nullptr));
    if (telemetry::enabled()) record_kernel_cost(run.launches[i]);
  }

  // Greedy placement in launch order: earliest-free lane (lowest index on
  // ties), gated by dependency ends and by memory admission — a launch
  // whose allocation does not fit waits for the earliest-ending resident
  // launches to retire. Deterministic throughout.
  std::vector<double> lane_free(streams, 0.0);
  std::vector<std::uint32_t> lane_of(n, 0);
  using Active = std::pair<double, std::uint64_t>;  // (end time, resident bytes)
  std::priority_queue<Active, std::vector<Active>, std::greater<>> active;
  std::uint64_t resident = 0;
  double makespan = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t lane = 0;
    for (std::uint32_t l = 1; l < streams; ++l) {
      if (lane_free[l] < lane_free[lane]) lane = l;
    }
    double start = lane_free[lane];
    for (const std::uint32_t d : launches[i].deps) {
      start = std::max(start, run.end_s[d]);
    }
    if (memory_budget > 0) {
      while (!active.empty() && active.top().first <= start) {
        resident -= active.top().second;
        active.pop();
      }
      while (resident + launches[i].resident_bytes > memory_budget && !active.empty()) {
        start = std::max(start, active.top().first);
        resident -= active.top().second;
        active.pop();
      }
    }
    const double end = start + run.launches[i].time_s;
    lane_free[lane] = end;
    lane_of[i] = lane;
    run.start_s[i] = start;
    run.end_s[i] = end;
    makespan = std::max(makespan, end);
    if (memory_budget > 0) {
      active.push({end, launches[i].resident_bytes});
      resident += launches[i].resident_bytes;
    }
    run.total.tasks += run.launches[i].tasks;
    run.total.warp_instructions += run.launches[i].warp_instructions;
    run.total.mem_bytes += run.launches[i].mem_bytes;
    run.total.launch_overhead_s += run.launches[i].launch_overhead_s;
  }

  // Device-wide capacity floors: the lanes overlap launches, but one device
  // still co-issues at most its sustained instruction throughput and moves
  // at most its sustained bandwidth. When a floor binds, stretch the whole
  // schedule uniformly so the intervals stay consistent with the makespan.
  run.total.compute_time_s =
      static_cast<double>(run.total.warp_instructions) * spec_.divergence_derate /
      spec_.sustained_warp_issue_per_s();
  run.total.memory_time_s =
      static_cast<double>(run.total.mem_bytes) / spec_.sustained_bandwidth_bytes_per_s();
  const double target =
      std::max({makespan, run.total.compute_time_s, run.total.memory_time_s});
  run.total.time_s = target;
  const double scale = makespan > 0.0 ? target / makespan : 1.0;
  if (scale != 1.0) {
    for (std::size_t i = 0; i < n; ++i) {
      run.start_s[i] *= scale;
      run.end_s[i] *= scale;
    }
  }

  if (session != nullptr) {
    const double base = session->now_s();
    for (std::size_t i = 0; i < n; ++i) {
      KernelProfile profile;
      if (!tags.empty()) profile.tag = tags.size() == 1 ? tags.front() : tags[i];
      if (tags.size() == 1 && i > 0) profile.tag.traffic = MemoryLedger{};
      profile.tag.stream = lane_of[i];
      profile.cost = run.launches[i];
      profile.counters = std::move(counters[i]);
      profile.counters.traffic = profile.tag.traffic;
      profile.start_s = base + run.start_s[i];
      profile.end_s = base + run.end_s[i];
      record_profiled_launch(profile);
      session->record(std::move(profile));
    }
    session->advance(run.total.time_s);
  }
  return run;
}

}  // namespace fastz::gpusim
