#include "gpusim/kernel_sim.hpp"

#include <algorithm>
#include <queue>

#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace fastz::gpusim {

namespace {

// Modeled (virtual-GPU) per-kernel components, recorded as integer
// nanoseconds so they land in the same counter/histogram machinery as the
// functional counters. Gated on the telemetry flag by the caller.
void record_kernel_cost(const KernelCost& cost) {
  auto& reg = telemetry::MetricsRegistry::global();
  reg.counter("gpusim.kernels").add(1);
  reg.counter("gpusim.kernel.compute_ns")
      .add(static_cast<std::uint64_t>(cost.compute_time_s * 1e9));
  reg.counter("gpusim.kernel.memory_ns")
      .add(static_cast<std::uint64_t>(cost.memory_time_s * 1e9));
  reg.counter("gpusim.kernel.launch_ns")
      .add(static_cast<std::uint64_t>(cost.launch_overhead_s * 1e9));
  reg.counter("gpusim.kernel.warp_instructions").add(cost.warp_instructions);
  reg.counter("gpusim.kernel.mem_bytes").add(cost.mem_bytes);
  reg.histogram("gpusim.kernel.tasks").record(cost.tasks);
}

}  // namespace

double KernelSimulator::task_time_s(const WarpTask& task) const noexcept {
  // Latency of the task running alone: a single warp progresses at its
  // dependent-chain IPC — this is what sets the bulk-synchronous tail of a
  // kernel holding one long alignment. Aggregate throughput is capped
  // separately in run_kernel().
  const double warp_rate = spec_.clock_ghz * 1e9 * spec_.single_warp_ipc;
  const double instructions =
      static_cast<double>(task.warp_instructions) * spec_.divergence_derate;
  return instructions / warp_rate;
}

KernelCost KernelSimulator::run_kernel(std::span<const WarpTask> tasks) const {
  KernelCost cost;
  cost.tasks = tasks.size();
  cost.launch_overhead_s = spec_.kernel_launch_overhead_s;
  if (tasks.empty()) {
    cost.time_s = cost.launch_overhead_s;
    return cost;
  }

  // Greedy list scheduling: each task goes to the earliest-finishing slot.
  // This is how the hardware work-distributor behaves to first order, and
  // it exposes the bulk-synchronous tail: the kernel ends at the *latest*
  // slot, so one long alignment in a kernel of short ones leaves the rest
  // of the device idle.
  const std::uint32_t slots = slot_count();
  std::priority_queue<double, std::vector<double>, std::greater<>> finish;
  for (std::uint32_t s = 0; s < slots; ++s) finish.push(0.0);

  double makespan = 0.0;
  for (const WarpTask& task : tasks) {
    const double start = finish.top();
    finish.pop();
    const double end = start + task_time_s(task);
    makespan = std::max(makespan, end);
    finish.push(end);
    cost.warp_instructions += task.warp_instructions;
    cost.mem_bytes += task.mem_bytes;
  }

  // Two compute rooflines: the latency makespan (tasks at single-warp
  // rate over the slots) and the device's sustained issue throughput for
  // the aggregate instruction stream — whichever binds.
  const double throughput_s =
      static_cast<double>(cost.warp_instructions) * spec_.divergence_derate /
      spec_.sustained_warp_issue_per_s();
  cost.compute_time_s = std::max(makespan, throughput_s);
  cost.memory_time_s =
      static_cast<double>(cost.mem_bytes) / spec_.sustained_bandwidth_bytes_per_s();
  cost.time_s = std::max(cost.compute_time_s, cost.memory_time_s) + cost.launch_overhead_s;
  if (telemetry::enabled()) record_kernel_cost(cost);
  return cost;
}

KernelCost KernelSimulator::run_streamed(const std::vector<std::vector<WarpTask>>& chunks,
                                         std::uint32_t streams) const {
  KernelCost total;
  if (streams <= 1) {
    // Serialized chunks: every chunk pays its own bulk-synchronous tail.
    for (const auto& chunk : chunks) {
      const KernelCost c = run_kernel(chunk);
      total.time_s += c.time_s;
      total.compute_time_s += c.compute_time_s;
      total.memory_time_s += c.memory_time_s;
      total.launch_overhead_s += c.launch_overhead_s;
      total.tasks += c.tasks;
      total.warp_instructions += c.warp_instructions;
      total.mem_bytes += c.mem_bytes;
    }
    return total;
  }

  // Streams overlap chunk execution: the device sees one pooled schedule.
  // Because every stream's first kernel launches at t = 0, a kernel holding
  // long tasks (a high bin) gets its long tasks started immediately; model
  // that with longest-processing-time ordering of the pooled task list (the
  // classic makespan-minimizing list order).
  std::vector<WarpTask> pooled;
  std::size_t total_tasks = 0;
  for (const auto& chunk : chunks) total_tasks += chunk.size();
  pooled.reserve(total_tasks);
  for (const auto& chunk : chunks) pooled.insert(pooled.end(), chunk.begin(), chunk.end());
  std::sort(pooled.begin(), pooled.end(), [](const WarpTask& x, const WarpTask& y) {
    return x.warp_instructions > y.warp_instructions;
  });

  total = run_kernel(pooled);
  // Launch overheads stay per-chunk but overlap across streams.
  const std::size_t chunks_per_stream =
      (chunks.size() + streams - 1) / std::max<std::uint32_t>(streams, 1);
  total.launch_overhead_s = spec_.kernel_launch_overhead_s *
                            static_cast<double>(std::max<std::size_t>(chunks_per_stream, 1));
  total.time_s = std::max(total.compute_time_s, total.memory_time_s) +
                 total.launch_overhead_s;
  return total;
}

}  // namespace fastz::gpusim
