// Bulk-synchronous kernel scheduling on the virtual GPU.
//
// FastZ's parallelism model assigns one seed-extension DP to one warp
// (Section 3.1.1). A kernel is a batch of such warp-tasks; it completes
// only when every task has (bulk synchrony), which is precisely what makes
// intermingled long and short alignments a load-imbalance problem and
// motivates length binning (Section 3.3). The simulator list-schedules the
// tasks onto the device's execution slots and reports the makespan together
// with the memory-bandwidth roofline time — whichever dominates is the
// kernel's modeled time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device_spec.hpp"

namespace fastz::gpusim {

struct KernelTag;    // gpusim/profiler.hpp
struct HwCounters;   // gpusim/profiler.hpp

// Cost record of one warp's work, produced by actually executing the
// functional kernel for one seed extension.
struct WarpTask {
  // Warp instructions before divergence derating (DP steps x ops/cell).
  std::uint64_t warp_instructions = 0;
  // Global-memory bytes this task moves.
  std::uint64_t mem_bytes = 0;
};
// The struct is deliberately two words: derive() builds, batches, pools,
// and sorts vectors of these on its hot path, and growing it measurably
// slows the unprofiled sweep. Per-level traffic attribution therefore
// rides on the *launch* (KernelTag::traffic, filled only while a
// ProfilerSession is installed), not on the task.

struct KernelCost {
  double time_s = 0.0;          // max(compute makespan, memory roofline) + launch
  double compute_time_s = 0.0;  // list-schedule makespan
  double memory_time_s = 0.0;   // aggregate bytes / sustained bandwidth
  double launch_overhead_s = 0.0;
  std::uint64_t tasks = 0;
  std::uint64_t warp_instructions = 0;
  std::uint64_t mem_bytes = 0;

  bool memory_bound() const noexcept { return memory_time_s > compute_time_s; }
};

class KernelSimulator {
 public:
  explicit KernelSimulator(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const noexcept { return spec_; }

  // One bulk-synchronous kernel over `tasks`. The tagged overload labels the
  // launch for the profiler (gpusim/profiler.hpp); the untagged one uses a
  // default tag. While a ProfilerSession is installed, each launch records
  // per-kernel/per-SM HwCounters and its simulated-timeline interval.
  KernelCost run_kernel(std::span<const WarpTask> tasks) const;
  KernelCost run_kernel(std::span<const WarpTask> tasks, const KernelTag& tag) const;

  // A sequence of kernels (chunks). With `streams == 1` the chunks are
  // serialized — each pays its own bulk-synchronous tail (the FastZ
  // single-stream ablation). With more streams, chunks overlap: tasks pool
  // into one schedule and only the launch overheads stay per-chunk
  // (Section 3.4, "Streams").
  //
  // `tags` labels the chunk launches: empty = default tags, one entry = the
  // shared base tag for every chunk, otherwise one tag per chunk. Stream
  // ids in the tags are overwritten with the simulator's round-robin stream
  // assignment.
  KernelCost run_streamed(const std::vector<std::vector<WarpTask>>& chunks,
                          std::uint32_t streams) const;
  KernelCost run_streamed(const std::vector<std::vector<WarpTask>>& chunks,
                          std::uint32_t streams, std::span<const KernelTag> tags) const;

  // Execution slots the schedule distributes tasks over.
  std::uint32_t slot_count() const noexcept {
    return spec_.sm_count * spec_.issue_per_sm;
  }

  // Modeled wall-clock of one task running alone.
  double task_time_s(const WarpTask& task) const noexcept;

 private:
  // Pure scheduling/cost computation. When `counters` is non-null (an
  // installed ProfilerSession), also derives the modeled hardware counters
  // — per-SM busy time, issued/stalled warp-cycles, achieved occupancy.
  // The profiled variant lives in its own (cold) function so the unprofiled
  // scheduling loop stays as small as it was before the profiler existed.
  KernelCost simulate(std::span<const WarpTask> tasks, HwCounters* counters) const;
  KernelCost simulate_profiled(std::span<const WarpTask> tasks, HwCounters& counters) const;

  DeviceSpec spec_;
};

}  // namespace fastz::gpusim
