// Bulk-synchronous kernel scheduling on the virtual GPU.
//
// FastZ's parallelism model assigns one seed-extension DP to one warp
// (Section 3.1.1). A kernel is a batch of such warp-tasks; it completes
// only when every task has (bulk synchrony), which is precisely what makes
// intermingled long and short alignments a load-imbalance problem and
// motivates length binning (Section 3.3). The simulator list-schedules the
// tasks onto the device's execution slots and reports the makespan together
// with the memory-bandwidth roofline time — whichever dominates is the
// kernel's modeled time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device_spec.hpp"

namespace fastz::gpusim {

struct KernelTag;    // gpusim/profiler.hpp
struct HwCounters;   // gpusim/profiler.hpp

// Cost record of one warp's work, produced by actually executing the
// functional kernel for one seed extension.
struct WarpTask {
  // Warp instructions before divergence derating (DP steps x ops/cell).
  std::uint64_t warp_instructions = 0;
  // Global-memory bytes this task moves.
  std::uint64_t mem_bytes = 0;
};
// The struct is deliberately two words: derive() builds, batches, pools,
// and sorts vectors of these on its hot path, and growing it measurably
// slows the unprofiled sweep. Per-level traffic attribution therefore
// rides on the *launch* (KernelTag::traffic, filled only while a
// ProfilerSession is installed), not on the task.

struct KernelCost {
  double time_s = 0.0;          // max(compute makespan, memory roofline) + launch
  double compute_time_s = 0.0;  // list-schedule makespan
  double memory_time_s = 0.0;   // aggregate bytes / sustained bandwidth
  double launch_overhead_s = 0.0;
  std::uint64_t tasks = 0;
  std::uint64_t warp_instructions = 0;
  std::uint64_t mem_bytes = 0;

  bool memory_bound() const noexcept { return memory_time_s > compute_time_s; }
};

// One launch of a persistently-fed stream schedule (run_pipeline): its task
// list, the device allocation it holds while in flight, and the indices of
// earlier launches that must retire before it may start (the batched
// dispatcher chains each executor launch after the inspector launch that
// produced its seeds). Tags ride in a separate span, like run_streamed's.
struct StreamLaunch {
  std::vector<WarpTask> tasks;
  std::uint64_t resident_bytes = 0;
  std::vector<std::uint32_t> deps;
};

// Result of run_pipeline: the end-to-end cost plus each launch's standalone
// cost and its interval on the modeled timeline (seconds from the call's
// start, already rescaled when a device-capacity roofline stretched the
// schedule). The caller splits phase times from the intervals.
struct PipelineRun {
  KernelCost total;                   // time_s = modeled end-to-end makespan
  std::vector<KernelCost> launches;   // standalone per-launch costs
  std::vector<double> start_s;
  std::vector<double> end_s;
};

class KernelSimulator {
 public:
  explicit KernelSimulator(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const noexcept { return spec_; }

  // One bulk-synchronous kernel over `tasks`. The tagged overload labels the
  // launch for the profiler (gpusim/profiler.hpp); the untagged one uses a
  // default tag. While a ProfilerSession is installed, each launch records
  // per-kernel/per-SM HwCounters and its simulated-timeline interval.
  KernelCost run_kernel(std::span<const WarpTask> tasks) const;
  KernelCost run_kernel(std::span<const WarpTask> tasks, const KernelTag& tag) const;

  // A sequence of kernels (chunks). With `streams == 1` the chunks are
  // serialized — each pays its own bulk-synchronous tail (the FastZ
  // single-stream ablation). With more streams, chunks overlap: tasks pool
  // into one schedule and only the launch overheads stay per-chunk
  // (Section 3.4, "Streams").
  //
  // `tags` labels the chunk launches: empty = default tags, one entry = the
  // shared base tag for every chunk, otherwise one tag per chunk. Stream
  // ids in the tags are overwritten with the simulator's round-robin stream
  // assignment.
  KernelCost run_streamed(const std::vector<std::vector<WarpTask>>& chunks,
                          std::uint32_t streams) const;
  KernelCost run_streamed(const std::vector<std::vector<WarpTask>>& chunks,
                          std::uint32_t streams, std::span<const KernelTag> tags) const;

  // run_streamed with per-chunk contention groups: chunks sharing a group
  // id contend for the same allocation budget and serialize against each
  // other; chunks in different groups overlap across streams as usual.
  // With no duplicated group id (or one stream) this is exactly
  // run_streamed — the legacy dispatch path stays bit-identical when the
  // memory batcher did not split any bin.
  KernelCost run_contended(const std::vector<std::vector<WarpTask>>& chunks,
                           std::span<const std::uint32_t> groups,
                           std::uint32_t streams,
                           std::span<const KernelTag> tags) const;

  // Persistently-fed stream schedule over whole launches: each launch is
  // costed standalone (its own bulk-synchronous tail and launch overhead)
  // and greedily placed on the earliest-free of `streams` lanes, no earlier
  // than its dependencies' ends, and no earlier than the point where the
  // still-resident launches leave `memory_budget` room for its allocation
  // (0 = unlimited). Device-wide capacity floors (sustained issue
  // throughput, memory bandwidth over the aggregate work) then stretch the
  // schedule uniformly when the lanes alone would exceed what one device
  // can co-issue. Tags follow run_streamed's convention (empty / shared /
  // per-launch); stream ids are overwritten with the assigned lane. The
  // profiled and unprofiled paths model identical costs.
  PipelineRun run_pipeline(std::span<const StreamLaunch> launches,
                           std::uint32_t streams, std::uint64_t memory_budget,
                           std::span<const KernelTag> tags = {}) const;

  // Execution slots the schedule distributes tasks over.
  std::uint32_t slot_count() const noexcept {
    return spec_.sm_count * spec_.issue_per_sm;
  }

  // Modeled wall-clock of one task running alone.
  double task_time_s(const WarpTask& task) const noexcept;

 private:
  // Pure scheduling/cost computation. When `counters` is non-null (an
  // installed ProfilerSession), also derives the modeled hardware counters
  // — per-SM busy time, issued/stalled warp-cycles, achieved occupancy.
  // The profiled variant lives in its own (cold) function so the unprofiled
  // scheduling loop stays as small as it was before the profiler existed.
  KernelCost simulate(std::span<const WarpTask> tasks, HwCounters* counters) const;
  KernelCost simulate_profiled(std::span<const WarpTask> tasks, HwCounters& counters) const;

  DeviceSpec spec_;
};

}  // namespace fastz::gpusim
