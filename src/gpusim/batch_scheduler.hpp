// Cross-seed batch scheduling for the virtual GPU.
//
// The paper's dispatch story (Section 3.1.3) is "pack many more seed
// extensions into one kernel": per-seed launches make launch count scale
// linearly with seeds, and intermingled long/short tasks make each launch
// tail-bound. This scheduler turns a flat, seed-index-ordered task list
// into few large launches:
//
//   * first-fit packing under the device memory budget — a launch closes
//     exactly when the next task's resident allocation would overflow the
//     budget (the same split condition the per-bin memory batcher used), so
//     an unlimited budget yields one launch;
//   * optional LPT (longest-processing-time-first) ordering *inside* each
//     launch, the classic makespan-minimizing list order for greedy list
//     scheduling — SaLoBa-style intra-launch balance. The permutation is
//     retained (`PackedLaunch::order`) so every per-task quantity can be
//     restored to seed-index order and results stay bit-identical; the
//     reorder only changes the modeled schedule.
//
// Consumers: FastzStudy::derive()'s batched dispatch arm builds its
// inspector and executor launches here, then feeds them to
// KernelSimulator::run_pipeline() with dependencies so executor launches
// chase their inspector chunk end-to-end instead of per-phase bulk
// synchrony.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/kernel_sim.hpp"

namespace fastz::gpusim {

// One schedulable unit: the warp work plus the device allocation the task
// holds while its launch is resident (traceback state, staged sequences).
struct BatchTask {
  WarpTask work;
  std::uint64_t resident_bytes = 0;
};

// One packed launch. `order[p]` is the index into the input span of the
// task at launch position `p` — the permutation LPT applied, kept so it can
// be undone.
struct PackedLaunch {
  std::vector<WarpTask> tasks;
  std::vector<std::uint32_t> order;
  std::uint64_t resident_bytes = 0;
  std::uint64_t warp_instructions = 0;
  std::uint64_t mem_bytes = 0;
};

struct PackOptions {
  // Max resident bytes per launch; 0 = unlimited (one launch). A single
  // task larger than the budget still gets a launch of its own — the
  // scheduler packs, it does not shrink tasks.
  std::uint64_t memory_budget = 0;
  // LPT-sort tasks inside each launch (ties broken by input index, so the
  // plan is deterministic). Off = keep input order, the A/B baseline.
  bool balance = true;
};

struct LaunchPlan {
  std::vector<PackedLaunch> launches;

  std::uint64_t total_tasks() const noexcept {
    std::uint64_t n = 0;
    for (const PackedLaunch& l : launches) n += l.tasks.size();
    return n;
  }

  // Undoes the packing permutation: scatters per-position values (outer
  // index = launch, inner = launch position) back to input order. The
  // round-trip `restore(values laid out by the plan) == input values` is
  // what keeps batched results seed-index-ordered and bit-identical.
  template <typename T>
  std::vector<T> restore(const std::vector<std::vector<T>>& per_launch) const {
    std::vector<T> out(total_tasks());
    for (std::size_t l = 0; l < launches.size(); ++l) {
      const PackedLaunch& launch = launches[l];
      for (std::size_t p = 0; p < launch.order.size(); ++p) {
        out[launch.order[p]] = per_launch[l][p];
      }
    }
    return out;
  }
};

// Packs `tasks` (in input order) into launches under `options`. Every input
// index appears exactly once across the plan's `order` vectors.
LaunchPlan pack_tasks(std::span<const BatchTask> tasks, const PackOptions& options);

// Greedy list-schedule makespan of `tasks` in the given order over `slots`
// execution slots, in warp-instruction units (no derate — order-comparison
// only). The balance test's metric: LPT order never loses to input order.
double list_makespan(std::span<const WarpTask> tasks, std::uint32_t slots);

}  // namespace fastz::gpusim
