#include "gpusim/profiler.hpp"

#include <algorithm>

#include "telemetry/trace_context.hpp"

namespace fastz::gpusim {

std::atomic<ProfilerSession*> ProfilerSession::active_{nullptr};

double HwCounters::max_sm_busy_s() const noexcept {
  double m = 0.0;
  for (const double b : sm_busy_s) m = std::max(m, b);
  return m;
}

double HwCounters::mean_sm_busy_s() const noexcept {
  if (sm_busy_s.empty()) return 0.0;
  double sum = 0.0;
  for (const double b : sm_busy_s) sum += b;
  return sum / static_cast<double>(sm_busy_s.size());
}

double HwCounters::load_imbalance() const noexcept {
  const double mean = mean_sm_busy_s();
  return mean > 0.0 ? max_sm_busy_s() / mean : 1.0;
}

void HwCounters::merge(const HwCounters& other) {
  // Task-weighted means for the per-kernel ratios; everything else sums.
  const double total_tasks = static_cast<double>(tasks + other.tasks);
  if (total_tasks > 0.0) {
    achieved_occupancy = (achieved_occupancy * static_cast<double>(tasks) +
                          other.achieved_occupancy * static_cast<double>(other.tasks)) /
                         total_tasks;
    divergence_derate = (divergence_derate * static_cast<double>(tasks) +
                         other.divergence_derate * static_cast<double>(other.tasks)) /
                        total_tasks;
  }
  tasks += other.tasks;
  warp_instructions += other.warp_instructions;
  issued_warp_cycles += other.issued_warp_cycles;
  stalled_warp_cycles += other.stalled_warp_cycles;
  tail_latency_s = std::max(tail_latency_s, other.tail_latency_s);
  if (sm_busy_s.size() < other.sm_busy_s.size()) sm_busy_s.resize(other.sm_busy_s.size());
  for (std::size_t i = 0; i < other.sm_busy_s.size(); ++i) {
    sm_busy_s[i] += other.sm_busy_s[i];
  }
  traffic.merge(other.traffic);
}

ProfilerSession::~ProfilerSession() {
  // Never leave a dangling active pointer behind.
  ProfilerSession* self = this;
  active_.compare_exchange_strong(self, nullptr, std::memory_order_relaxed);
}

void ProfilerSession::install() noexcept {
  active_.store(this, std::memory_order_relaxed);
}

void ProfilerSession::uninstall() noexcept {
  ProfilerSession* self = this;
  active_.compare_exchange_strong(self, nullptr, std::memory_order_relaxed);
}

void ProfilerSession::record(KernelProfile profile) {
  // Attribute the launch to the service batch/request the launching thread
  // is working for (zero ids when none is installed). Stamped here, at the
  // single funnel every launch passes through, rather than at each tag
  // construction site.
  if (profile.tag.batch == Digest128{} && profile.tag.request == Digest128{}) {
    const telemetry::TraceContext& ctx = telemetry::current_trace_context();
    profile.tag.batch = ctx.batch_id;
    profile.tag.request = ctx.request_id;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  kernels_.push_back(std::move(profile));
}

double ProfilerSession::now_s() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return timeline_s_;
}

void ProfilerSession::advance(double dt) {
  std::lock_guard<std::mutex> lock(mutex_);
  timeline_s_ += dt;
}

void ProfilerSession::note_seeds(std::uint64_t seeds, std::uint64_t eager_handled) {
  std::lock_guard<std::mutex> lock(mutex_);
  seeds_ += seeds;
  eager_handled_ += eager_handled;
}

std::vector<KernelProfile> ProfilerSession::kernels() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return kernels_;
}

std::size_t ProfilerSession::kernel_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return kernels_.size();
}

std::uint64_t ProfilerSession::seeds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seeds_;
}

std::uint64_t ProfilerSession::eager_handled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return eager_handled_;
}

double ProfilerSession::eager_hit_rate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seeds_ == 0 ? 0.0
                     : static_cast<double>(eager_handled_) / static_cast<double>(seeds_);
}

MemoryLedger ProfilerSession::traffic() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MemoryLedger total;
  for (const KernelProfile& k : kernels_) total.merge(k.counters.traffic);
  return total;
}

double ProfilerSession::score_elision_ratio() const {
  return traffic().score_elision_ratio();
}

void ProfilerSession::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  kernels_.clear();
  timeline_s_ = 0.0;
  seeds_ = 0;
  eager_handled_ = 0;
}

}  // namespace fastz::gpusim
