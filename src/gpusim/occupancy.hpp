// SM occupancy calculation and the cyclic-buffer placement analysis.
//
// Section 3.2 of the paper weighs where to put the three-diagonal
// use-and-discard buffers: "2 thread blocks each with 64 warps of 32
// threads, each requiring 36 bytes (3 scores of 4 bytes each), corresponds
// to 144 KB of Shared Memory storage" — beyond current GPUs' shared memory
// — "in contrast, the per-thread storage of 36 bytes can be accommodated
// easily in the register space of each CUDA thread." This module computes
// resident-warp occupancy under register / shared-memory / warp-slot limits
// and reproduces that argument quantitatively (bench_buffer_placement).
#pragma once

#include <cstdint>
#include <string>

#include "gpusim/device_spec.hpp"

namespace fastz::gpusim {

// Per-warp resource footprint of a kernel.
struct KernelResources {
  std::uint32_t registers_per_thread = 32;  // 4-byte registers
  std::uint32_t shared_bytes_per_warp = 0;
};

struct Occupancy {
  std::uint32_t resident_warps_per_sm = 0;
  std::string limiter;  // "warp slots" | "registers" | "shared memory"

  // Fraction of the architectural warp-slot maximum.
  double fraction(const DeviceSpec& spec) const {
    return spec.max_resident_warps_per_sm == 0
               ? 0.0
               : static_cast<double>(resident_warps_per_sm) /
                     spec.max_resident_warps_per_sm;
  }
};

// Resident warps per SM under all three limits. Throws on zero-resource
// kernels only in the degenerate sense of returning the slot maximum.
Occupancy compute_occupancy(const DeviceSpec& spec, const KernelResources& resources);

// The Section 3.2 comparison for the FastZ inspector kernel: the cyclic
// buffers (3 diagonals x S/I/D x 4 bytes = 36 bytes per thread) either live
// in shared memory or in registers (on top of a base register budget).
struct BufferPlacementAnalysis {
  std::uint64_t smem_bytes_for_full_occupancy = 0;  // the paper's "144 KB"
  Occupancy with_shared_memory_buffers;
  Occupancy with_register_buffers;
};

inline constexpr std::uint32_t kCyclicBufferBytesPerThread = 36;  // 3 x 3 x 4 B
inline constexpr std::uint32_t kInspectorBaseRegisters = 16;      // non-buffer state
// Shared memory the inspector needs per warp regardless of buffer
// placement: the 16x16 eager-traceback tile plus the write-combining
// staging line (Sections 3.1.2-3.1.3).
inline constexpr std::uint32_t kEagerTileBytesPerWarp = 256;
inline constexpr std::uint32_t kStagingBytesPerWarp = 128;
// The paper's Section 3.2 concurrency example: "2 thread blocks each with
// 64 warps of 32 threads".
inline constexpr std::uint32_t kPaperExampleWarpsPerSm = 128;

BufferPlacementAnalysis analyze_buffer_placement(const DeviceSpec& spec);

}  // namespace fastz::gpusim
